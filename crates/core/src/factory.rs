//! Scheme selection and one-call simulation entry points used by the
//! experiment harness, benches and examples.

use crate::cachecraft::{CacheCraft, CacheCraftConfig};
use crate::ecc_cache::EccCache;
use crate::naive::InlineNaive;
use ccraft_sim::config::GpuConfig;
use ccraft_sim::dram::MapOrder;
use ccraft_sim::protection::{ChannelInterleave, NoProtection, ProtectionScheme};
use ccraft_sim::stats::SimStats;
use ccraft_sim::trace::KernelTrace;
use std::fmt;

/// The protection schemes of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeKind {
    /// ECC disabled (performance upper bound).
    NoProtection,
    /// Naive inline ECC: per-access ECC fetches, per-write-back RMW.
    InlineNaive {
        /// Data atoms per ECC atom.
        coverage: u32,
    },
    /// Dedicated per-MC ECC cache (industry practice).
    EccCache {
        /// Data atoms per ECC atom.
        coverage: u32,
        /// Dedicated capacity per memory controller, bytes.
        capacity_per_mc: u64,
    },
    /// CacheCraft (configurable mechanisms).
    CacheCraft(CacheCraftConfig),
    /// Compression-backed inline ECC (Frugal-ECC-style baseline) with the
    /// given compressibility percentage.
    CompressedInline {
        /// Data atoms per exception atom.
        coverage: u32,
        /// Percentage of atoms that compress below the check-bit budget.
        compress_pct: u8,
    },
}

impl SchemeKind {
    /// The four headline configurations of the main figure (F4), in plot
    /// order, with CacheCraft's fragment budget scaled to the machine.
    pub fn headline(cfg: &GpuConfig) -> [SchemeKind; 4] {
        [
            SchemeKind::NoProtection,
            SchemeKind::InlineNaive { coverage: 8 },
            SchemeKind::EccCache {
                coverage: 8,
                capacity_per_mc: crate::ecc_cache::DEFAULT_CAPACITY_PER_MC,
            },
            SchemeKind::CacheCraft(CacheCraftConfig::for_machine(cfg)),
        ]
    }

    /// Short name matching the scheme's `ProtectionScheme::name`.
    pub fn name(&self) -> &'static str {
        match self {
            SchemeKind::NoProtection => "no-protection",
            SchemeKind::InlineNaive { .. } => "inline-naive",
            SchemeKind::EccCache { .. } => "ecc-cache",
            SchemeKind::CacheCraft(_) => "cachecraft",
            SchemeKind::CompressedInline { .. } => "compressed-inline",
        }
    }

    /// Instantiates the scheme for a machine.
    pub fn build(&self, cfg: &GpuConfig) -> Box<dyn ProtectionScheme> {
        match *self {
            SchemeKind::NoProtection => Box::new(NoProtection::new(ChannelInterleave::new(
                cfg.mem.channels,
                cfg.mem.interleave_atoms,
            ))),
            SchemeKind::InlineNaive { coverage } => Box::new(InlineNaive::new(cfg, coverage)),
            SchemeKind::EccCache {
                coverage,
                capacity_per_mc,
            } => Box::new(EccCache::new(cfg, coverage, capacity_per_mc)),
            SchemeKind::CacheCraft(cc) => Box::new(CacheCraft::new(cfg, cc)),
            SchemeKind::CompressedInline {
                coverage,
                compress_pct,
            } => Box::new(crate::frugal::CompressedInline::new(
                cfg,
                coverage,
                compress_pct,
            )),
        }
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Runs `trace` under `kind` on `cfg` with the standard row-major DRAM
/// mapping, returning the run's statistics.
pub fn run_scheme(cfg: &GpuConfig, kind: SchemeKind, trace: &KernelTrace) -> SimStats {
    let mut scheme = kind.build(cfg);
    ccraft_sim::gpu::simulate(cfg, MapOrder::RoBaCo, trace, scheme.as_mut())
}

/// Like [`run_scheme`], but with telemetry collection configured by
/// `tel`: the returned [`ccraft_sim::SimOutput`] carries the latency
/// histogram and epoch timeline inside its stats (when enabled) and the
/// Chrome trace (when `tel.trace_events` is set). With
/// `TelemetryConfig::disabled()` the stats are bit-identical to
/// [`run_scheme`].
pub fn run_scheme_with_telemetry(
    cfg: &GpuConfig,
    kind: SchemeKind,
    trace: &KernelTrace,
    tel: &ccraft_telemetry::TelemetryConfig,
) -> ccraft_sim::SimOutput {
    run_scheme_instrumented(cfg, kind, trace, tel, None)
}

/// Like [`run_scheme_with_telemetry`], plus optional in-situ fault
/// injection: when `faults` is given, DRAM reads are exposed to the
/// configured error pattern, decode trials run through the scheme's
/// storage codec, and benign/corrected/DUE/SDC counters land in
/// [`SimStats::faults`](ccraft_sim::SimStats).
pub fn run_scheme_instrumented(
    cfg: &GpuConfig,
    kind: SchemeKind,
    trace: &KernelTrace,
    tel: &ccraft_telemetry::TelemetryConfig,
    faults: Option<&ccraft_sim::faults::FaultConfig>,
) -> ccraft_sim::SimOutput {
    run_scheme_profiled(cfg, kind, trace, tel, faults, false)
}

/// Like [`run_scheme_instrumented`], plus optional self-profiling: when
/// `profile` is true the returned output carries a
/// [`SimProfile`](ccraft_telemetry::profiler::SimProfile) with host
/// wall-time attribution per component, memo hit rates, idle-span and
/// scan-depth histograms, and the per-channel load table. Profiling is
/// observation only — stats stay bit-identical either way.
pub fn run_scheme_profiled(
    cfg: &GpuConfig,
    kind: SchemeKind,
    trace: &KernelTrace,
    tel: &ccraft_telemetry::TelemetryConfig,
    faults: Option<&ccraft_sim::faults::FaultConfig>,
    profile: bool,
) -> ccraft_sim::SimOutput {
    run_scheme_exec(
        cfg,
        kind,
        trace,
        tel,
        faults,
        profile,
        &ccraft_sim::ExecConfig::default(),
    )
}

/// Like [`run_scheme_profiled`], plus an execution configuration: with
/// `exec.sim_threads > 1` the cycle loop is sharded across worker threads
/// by memory channel. Sharding is an execution strategy, not a model
/// change — stats stay bit-identical at every thread count.
#[allow(clippy::too_many_arguments)]
pub fn run_scheme_exec(
    cfg: &GpuConfig,
    kind: SchemeKind,
    trace: &KernelTrace,
    tel: &ccraft_telemetry::TelemetryConfig,
    faults: Option<&ccraft_sim::faults::FaultConfig>,
    profile: bool,
    exec: &ccraft_sim::ExecConfig,
) -> ccraft_sim::SimOutput {
    let mut scheme = kind.build(cfg);
    ccraft_sim::gpu::simulate_with_exec(
        cfg,
        MapOrder::RoBaCo,
        trace,
        scheme.as_mut(),
        tel,
        faults,
        profile,
        exec,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccraft_sim::trace::{WarpOp, WarpTrace};
    use ccraft_sim::types::{LogicalAtom, TrafficClass};

    fn small_stream() -> KernelTrace {
        let warps = (0..4u64)
            .map(|w| {
                WarpTrace::new(
                    (0..32)
                        .map(|i| WarpOp::Load {
                            atoms: (0..4).map(|k| LogicalAtom(w * 512 + i * 4 + k)).collect(),
                        })
                        .collect(),
                )
            })
            .collect();
        KernelTrace::new("stream", warps)
    }

    #[test]
    fn headline_order_and_names() {
        let cfg = GpuConfig::tiny();
        let names: Vec<_> = SchemeKind::headline(&cfg)
            .iter()
            .map(|s| s.name())
            .collect();
        assert_eq!(
            names,
            ["no-protection", "inline-naive", "ecc-cache", "cachecraft"]
        );
    }

    #[test]
    fn all_schemes_run_the_same_trace() {
        let cfg = GpuConfig::tiny();
        let trace = small_stream();
        for kind in SchemeKind::headline(&cfg) {
            let stats = run_scheme(&cfg, kind, &trace);
            assert!(!stats.timed_out, "{kind} timed out");
            assert_eq!(stats.scheme, kind.name());
            // Demand data traffic is identical across schemes.
            assert_eq!(
                stats.dram_count(TrafficClass::DataRead),
                trace.footprint_atoms(),
                "{kind}"
            );
        }
    }

    #[test]
    fn protection_ordering_holds_on_streams() {
        // ECC-off must be fastest; naive slowest; the two cached schemes in
        // between (ties allowed at this tiny scale).
        let cfg = GpuConfig::tiny();
        let trace = small_stream();
        let cycles: Vec<u64> = SchemeKind::headline(&cfg)
            .iter()
            .map(|&k| run_scheme(&cfg, k, &trace).exec_cycles)
            .collect();
        let (none, naive, ecc_cache, cachecraft) = (cycles[0], cycles[1], cycles[2], cycles[3]);
        assert!(none <= naive, "no-protection {none} > naive {naive}");
        assert!(ecc_cache <= naive, "ecc-cache {ecc_cache} > naive {naive}");
        assert!(
            cachecraft <= naive,
            "cachecraft {cachecraft} > naive {naive}"
        );
    }

    #[test]
    fn telemetry_entry_point_matches_plain_run() {
        let cfg = GpuConfig::tiny();
        let trace = small_stream();
        let kind = SchemeKind::CacheCraft(CacheCraftConfig::for_machine(&cfg));
        let plain = run_scheme(&cfg, kind, &trace);
        // Disabled telemetry: bit-identical stats, no trace.
        let off = run_scheme_with_telemetry(
            &cfg,
            kind,
            &trace,
            &ccraft_telemetry::TelemetryConfig::disabled(),
        );
        assert_eq!(off.stats, plain);
        assert!(off.trace.is_none());
        // Enabled telemetry: histogram and timeline attached, aggregates
        // unchanged.
        let on = run_scheme_with_telemetry(
            &cfg,
            kind,
            &trace,
            &ccraft_telemetry::TelemetryConfig::enabled(),
        );
        assert_eq!(on.stats.exec_cycles, plain.exec_cycles);
        let hist = on.stats.latency_hist.as_ref().expect("histogram attached");
        assert!(hist.p99() >= hist.p50());
        assert!(hist.p50() >= 1);
        assert!(on.stats.timeline.as_ref().expect("timeline").epochs() >= 1);
    }

    #[test]
    fn schemes_decode_injected_faults_with_their_own_codec() {
        use ccraft_ecc::inject::ErrorPattern;
        use ccraft_sim::faults::{FaultConfig, FaultRate};
        let cfg = GpuConfig::tiny();
        let trace = small_stream();
        let fc = FaultConfig {
            pattern: ErrorPattern::SymbolError,
            rate: FaultRate::PerAccess { p: 1.0 },
            seed: 42,
        };
        let tel = ccraft_telemetry::TelemetryConfig::disabled();
        let run = |kind| {
            run_scheme_instrumented(&cfg, kind, &trace, &tel, Some(&fc))
                .stats
                .faults
                .expect("fault stats")
        };
        // No protection: every faulted data read is silent corruption.
        let none = run(SchemeKind::NoProtection);
        assert!(none.injected > 0);
        assert_eq!(none.sdc, none.injected);
        assert_eq!(none.ecc_reads, 0);
        // CacheCraft decodes RS(36,32): whole-symbol faults are corrected.
        let craft = run(SchemeKind::CacheCraft(CacheCraftConfig::for_machine(&cfg)));
        assert!(craft.corrected > 0, "{craft:?}");
        assert_eq!(craft.sdc, 0, "RS corrects every single-symbol fault");
        // Inline SEC-DED cannot correct multi-bit symbol faults: some
        // become DUE or SDC.
        let naive = run(SchemeKind::InlineNaive { coverage: 8 });
        assert!(naive.due + naive.sdc > 0, "{naive:?}");
        // CacheCraft's cached/reconstructed ECC exposes fewer ECC reads
        // to faults than fetch-per-access naive.
        assert!(craft.ecc_reads <= naive.ecc_reads);
    }

    #[test]
    fn sharded_execution_is_bit_identical_for_every_scheme() {
        // The tentpole guarantee at the harness level: each scheme's
        // channel split (coalesce buffers, fragment/dedicated stores,
        // per-channel counters) must reproduce single-threaded stats
        // exactly. Write traffic is included so write-back/drain paths
        // partition too.
        let cfg = GpuConfig::tiny();
        let mut warps: Vec<WarpTrace> = Vec::new();
        for w in 0..4u64 {
            let mut ops = Vec::new();
            for i in 0..24u64 {
                ops.push(WarpOp::Load {
                    atoms: (0..4).map(|k| LogicalAtom(w * 512 + i * 4 + k)).collect(),
                });
                if i % 3 == 0 {
                    ops.push(WarpOp::Store {
                        atoms: (0..4).map(|k| LogicalAtom(w * 512 + i * 4 + k)).collect(),
                        full: i % 2 == 0,
                    });
                }
                ops.push(WarpOp::Compute {
                    cycles: (8 + (w * 5 + i) % 17) as u32,
                });
            }
            warps.push(WarpTrace::new(ops));
        }
        let trace = KernelTrace::new("mixed", warps);
        let tel = ccraft_telemetry::TelemetryConfig::disabled();
        let mut kinds = SchemeKind::headline(&cfg).to_vec();
        kinds.push(SchemeKind::CompressedInline {
            coverage: 8,
            compress_pct: 70,
        });
        for kind in kinds {
            let base = run_scheme(&cfg, kind, &trace);
            for threads in [2u32, 8] {
                let exec = ccraft_sim::ExecConfig {
                    sim_threads: threads,
                };
                let sharded = run_scheme_exec(&cfg, kind, &trace, &tel, None, false, &exec);
                assert_eq!(sharded.stats, base, "{kind} diverged at {threads} threads");
            }
        }
    }

    #[test]
    fn ecc_traffic_ordering_holds() {
        let cfg = GpuConfig::tiny();
        let trace = small_stream();
        let ecc_reads: Vec<u64> = SchemeKind::headline(&cfg)
            .iter()
            .map(|&k| run_scheme(&cfg, k, &trace).dram_count(TrafficClass::EccRead))
            .collect();
        assert_eq!(ecc_reads[0], 0);
        assert!(
            ecc_reads[1] >= ecc_reads[2],
            "naive {} < ecc-cache {}",
            ecc_reads[1],
            ecc_reads[2]
        );
        assert!(
            ecc_reads[1] >= ecc_reads[3],
            "naive {} < cachecraft {}",
            ecc_reads[1],
            ecc_reads[3]
        );
        // Naive fetches ECC for every data read.
        assert_eq!(ecc_reads[1], trace.footprint_atoms());
    }
}
