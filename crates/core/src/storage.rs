//! On-chip storage and complexity accounting (experiment T4).
//!
//! Memory-protection schemes trade DRAM traffic for on-chip state. This
//! module computes, per scheme, how many bytes of SRAM the mechanism adds
//! (dedicated structures plus tag/bookkeeping overhead) and how many bytes
//! of existing L2 it repurposes, so the evaluation can compare schemes at
//! matched hardware budgets.

use crate::cachecraft::CacheCraftConfig;
use crate::factory::SchemeKind;
use ccraft_sim::config::GpuConfig;
use ccraft_sim::types::ATOM_BYTES;
use serde::{Deserialize, Serialize};

/// Approximate tag + state overhead per cached ECC atom (tag, valid/dirty
/// bits, replacement state), rounded to whole bytes.
pub const TAG_BYTES_PER_ENTRY: u64 = 4;

/// Storage bill of one scheme on one machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageBill {
    /// New dedicated SRAM, bytes (data arrays + tags), whole GPU.
    pub dedicated_bytes: u64,
    /// Existing L2 capacity repurposed, bytes, whole GPU.
    pub repurposed_l2_bytes: u64,
    /// Small buffers (write-coalescing entries), bytes, whole GPU.
    pub buffer_bytes: u64,
}

impl StorageBill {
    /// Total new hardware the scheme asks for (repurposed capacity is not
    /// *new* silicon but is lost to data caching; reported separately).
    pub fn new_silicon_bytes(&self) -> u64 {
        self.dedicated_bytes + self.buffer_bytes
    }

    /// Everything the scheme takes, new or repurposed.
    pub fn total_bytes(&self) -> u64 {
        self.dedicated_bytes + self.repurposed_l2_bytes + self.buffer_bytes
    }
}

/// Computes the storage bill of `kind` on `cfg`.
pub fn storage_bill(kind: SchemeKind, cfg: &GpuConfig) -> StorageBill {
    let channels = cfg.mem.channels as u64;
    match kind {
        // Compression logic is combinational (no SRAM arrays); its area is
        // not expressible in bytes and is excluded, like ECC codec logic.
        SchemeKind::NoProtection
        | SchemeKind::InlineNaive { .. }
        | SchemeKind::CompressedInline { .. } => StorageBill {
            dedicated_bytes: 0,
            repurposed_l2_bytes: 0,
            buffer_bytes: 0,
        },
        SchemeKind::EccCache {
            capacity_per_mc, ..
        } => {
            let entries = capacity_per_mc / ATOM_BYTES;
            StorageBill {
                dedicated_bytes: channels * (capacity_per_mc + entries * TAG_BYTES_PER_ENTRY),
                repurposed_l2_bytes: 0,
                buffer_bytes: 0,
            }
        }
        SchemeKind::CacheCraft(cc) => cachecraft_bill(cc, cfg),
    }
}

fn cachecraft_bill(cc: CacheCraftConfig, cfg: &GpuConfig) -> StorageBill {
    let channels = cfg.mem.channels as u64;
    let repurposed = if cc.fragment_store {
        channels * cc.fragment_bytes_per_slice
    } else {
        0
    };
    // Fragment entries need tags even though the data array is repurposed.
    let frag_tags = if cc.fragment_store {
        channels * (cc.fragment_bytes_per_slice / ATOM_BYTES) * TAG_BYTES_PER_ENTRY
    } else {
        0
    };
    let buffers = if cc.reconstruct {
        // Each coalescing entry holds one ECC atom plus its address tag.
        channels * cc.coalesce_entries as u64 * (ATOM_BYTES + TAG_BYTES_PER_ENTRY)
    } else {
        0
    };
    StorageBill {
        dedicated_bytes: frag_tags,
        repurposed_l2_bytes: repurposed,
        buffer_bytes: buffers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecc_cache::DEFAULT_CAPACITY_PER_MC;

    #[test]
    fn baselines_cost_nothing() {
        let cfg = GpuConfig::gddr6();
        for kind in [
            SchemeKind::NoProtection,
            SchemeKind::InlineNaive { coverage: 8 },
        ] {
            let bill = storage_bill(kind, &cfg);
            assert_eq!(bill.total_bytes(), 0);
        }
    }

    #[test]
    fn ecc_cache_bill() {
        let cfg = GpuConfig::gddr6(); // 8 channels
        let bill = storage_bill(
            SchemeKind::EccCache {
                coverage: 8,
                capacity_per_mc: DEFAULT_CAPACITY_PER_MC,
            },
            &cfg,
        );
        // 16 KiB data + 512 entries x 4 B tags, x 8 channels.
        assert_eq!(bill.dedicated_bytes, 8 * ((16 << 10) + 512 * 4));
        assert_eq!(bill.repurposed_l2_bytes, 0);
        assert_eq!(bill.new_silicon_bytes(), bill.dedicated_bytes);
    }

    #[test]
    fn cachecraft_repurposes_rather_than_adds() {
        let cfg = GpuConfig::gddr6();
        let bill = storage_bill(SchemeKind::CacheCraft(CacheCraftConfig::full()), &cfg);
        assert_eq!(bill.repurposed_l2_bytes, 8 * (64 << 10));
        // New silicon: only fragment tags + coalescing buffers — far less
        // than the dedicated ECC cache.
        let ecc = storage_bill(
            SchemeKind::EccCache {
                coverage: 8,
                capacity_per_mc: DEFAULT_CAPACITY_PER_MC,
            },
            &cfg,
        );
        assert!(bill.new_silicon_bytes() < ecc.new_silicon_bytes());
    }

    #[test]
    fn ablations_zero_out_components() {
        let cfg = GpuConfig::gddr6();
        let c1 = storage_bill(
            SchemeKind::CacheCraft(CacheCraftConfig::colocate_only()),
            &cfg,
        );
        assert_eq!(c1.total_bytes(), 0, "co-location is a pure layout change");
        let c3 = storage_bill(
            SchemeKind::CacheCraft(CacheCraftConfig::reconstruct_only()),
            &cfg,
        );
        assert_eq!(c3.repurposed_l2_bytes, 0);
        assert!(c3.buffer_bytes > 0);
    }
}
