//! # ccraft-workloads — synthetic GPU kernel trace generators
//!
//! The CacheCraft paper evaluates on CUDA benchmark suites we cannot run
//! here; this crate substitutes deterministic generators that reproduce the
//! *access patterns* those suites are known for (see DESIGN.md §2). Thirteen
//! kernels span the locality spectrum:
//!
//! | Kernel      | Archetype                  | Pattern |
//! |-------------|----------------------------|---------|
//! | `vecadd`    | vectorAdd / STREAM copy+   | unit-stride streaming |
//! | `triad`     | STREAM triad               | 2 loads + 1 store streams |
//! | `saxpy`     | BLAS-1                     | read-modify-write stream |
//! | `reduction` | tree reduction             | shrinking streaming passes |
//! | `gemm`      | tiled sgemm                | tile reuse, compute-heavy |
//! | `stencil2d` | hotspot                    | 5-point halo reuse |
//! | `conv2d`    | convolution layer          | sliding-window reuse |
//! | `transpose` | matrix transpose           | coalesced reads, scattered partial writes |
//! | `kmeans`    | k-means distance phase     | SoA streams + hot table |
//! | `spmv`      | CSR SpMV                   | streams + random gathers |
//! | `bfs`       | level-synchronous BFS      | pointer chasing, scatter updates |
//! | `histogram` | binning / atomics          | streams + hot partial stores |
//! | `montecarlo`| MC pricing / table lookup  | compute-bound random probes |
//!
//! All generators are deterministic given `(size, seed)`.
//!
//! ## Example
//!
//! ```
//! use ccraft_workloads::{SizeClass, Workload};
//!
//! let trace = Workload::VecAdd.generate(SizeClass::Tiny, 42);
//! assert_eq!(trace.name(), "vecadd");
//! assert!(trace.total_accesses() > 0);
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod common;
pub mod dense;
pub mod irregular;
pub mod streaming;

use ccraft_sim::trace::KernelTrace;
use std::fmt;

/// Workload size classes, trading simulation time for realism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeClass {
    /// Unit-test scale: 8 warps, sub-MiB footprints.
    Tiny,
    /// Quick-experiment scale: 64 warps, a few MiB.
    Small,
    /// Full evaluation scale: 256 warps, footprints well beyond the L2.
    Full,
}

impl SizeClass {
    /// `(warps, footprint multiplier)` for this class.
    pub fn scale(self) -> (u64, u64) {
        match self {
            SizeClass::Tiny => (8, 1),
            SizeClass::Small => (64, 4),
            SizeClass::Full => (256, 16),
        }
    }
}

impl fmt::Display for SizeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SizeClass::Tiny => "tiny",
            SizeClass::Small => "small",
            SizeClass::Full => "full",
        };
        f.write_str(s)
    }
}

/// The workload suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are documented in the module table above
pub enum Workload {
    VecAdd,
    Triad,
    Saxpy,
    Reduction,
    Gemm,
    Stencil2D,
    Conv2D,
    Transpose,
    KMeans,
    Spmv,
    Bfs,
    Histogram,
    MonteCarlo,
}

impl Workload {
    /// Every workload, in canonical report order.
    pub const ALL: [Workload; 13] = [
        Workload::VecAdd,
        Workload::Triad,
        Workload::Saxpy,
        Workload::Reduction,
        Workload::Gemm,
        Workload::Stencil2D,
        Workload::Conv2D,
        Workload::Transpose,
        Workload::KMeans,
        Workload::Spmv,
        Workload::Bfs,
        Workload::Histogram,
        Workload::MonteCarlo,
    ];

    /// Canonical lowercase name (matches the generated trace's name).
    pub fn name(self) -> &'static str {
        match self {
            Workload::VecAdd => "vecadd",
            Workload::Triad => "triad",
            Workload::Saxpy => "saxpy",
            Workload::Reduction => "reduction",
            Workload::Gemm => "gemm",
            Workload::Stencil2D => "stencil2d",
            Workload::Conv2D => "conv2d",
            Workload::Transpose => "transpose",
            Workload::KMeans => "kmeans",
            Workload::Spmv => "spmv",
            Workload::Bfs => "bfs",
            Workload::Histogram => "histogram",
            Workload::MonteCarlo => "montecarlo",
        }
    }

    /// Looks a workload up by its canonical name.
    pub fn from_name(name: &str) -> Option<Workload> {
        Self::ALL.iter().copied().find(|w| w.name() == name)
    }

    /// Generates the kernel trace.
    pub fn generate(self, size: SizeClass, seed: u64) -> KernelTrace {
        match self {
            Workload::VecAdd => streaming::vecadd(size, seed),
            Workload::Triad => streaming::triad(size, seed),
            Workload::Saxpy => streaming::saxpy(size, seed),
            Workload::Reduction => streaming::reduction(size, seed),
            Workload::Gemm => dense::gemm(size, seed),
            Workload::Stencil2D => dense::stencil2d(size, seed),
            Workload::Conv2D => dense::conv2d(size, seed),
            Workload::Transpose => dense::transpose(size, seed),
            Workload::KMeans => dense::kmeans(size, seed),
            Workload::Spmv => irregular::spmv(size, seed),
            Workload::Bfs => irregular::bfs(size, seed),
            Workload::Histogram => irregular::histogram(size, seed),
            Workload::MonteCarlo => irregular::montecarlo(size, seed),
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for w in Workload::ALL {
            assert_eq!(Workload::from_name(w.name()), Some(w));
            assert_eq!(w.to_string(), w.name());
        }
        assert_eq!(Workload::from_name("nope"), None);
    }

    #[test]
    fn every_workload_generates_a_named_nonempty_trace() {
        for w in Workload::ALL {
            let t = w.generate(SizeClass::Tiny, 7);
            assert_eq!(t.name(), w.name());
            assert!(t.total_ops() > 0, "{w} produced an empty trace");
            assert!(t.total_accesses() > 0, "{w} touches no memory");
        }
    }

    #[test]
    fn tiny_traces_fit_tiny_machines() {
        // 8 warps each: must fit a 2-SM x 4-warp tiny config.
        for w in Workload::ALL {
            let t = w.generate(SizeClass::Tiny, 7);
            assert!(t.warps().len() <= 8, "{w} has {} warps", t.warps().len());
        }
    }

    #[test]
    fn full_traces_fit_the_gddr6_machine() {
        let slots = 16 * 24; // gddr6 preset
        for w in Workload::ALL {
            let (warps, _) = SizeClass::Full.scale();
            assert!(warps <= slots, "{w}: {warps} warps > {slots} slots");
        }
    }

    #[test]
    fn full_access_counts_are_within_budget() {
        // Keep every full-size workload simulable in seconds: between 50k
        // and 1.5M coalesced accesses.
        for w in Workload::ALL {
            let t = w.generate(SizeClass::Full, 7);
            let a = t.total_accesses();
            assert!(a >= 50_000, "{w}: only {a} accesses");
            assert!(a <= 1_500_000, "{w}: {a} accesses is too slow to simulate");
        }
    }

    #[test]
    fn footprints_exceed_l2_for_capacity_bound_kernels() {
        // The main-figure kernels must spill the 4 MiB L2 at Full size.
        let l2_atoms = (4 << 20) / 32;
        for w in [
            Workload::VecAdd,
            Workload::Triad,
            Workload::Saxpy,
            Workload::Transpose,
            Workload::Stencil2D,
        ] {
            let t = w.generate(SizeClass::Full, 7);
            assert!(
                t.footprint_atoms() > l2_atoms,
                "{w}: footprint {} atoms fits in L2",
                t.footprint_atoms()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for w in Workload::ALL {
            assert_eq!(
                w.generate(SizeClass::Tiny, 3),
                w.generate(SizeClass::Tiny, 3),
                "{w} not deterministic"
            );
        }
    }
}
