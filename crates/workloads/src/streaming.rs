//! Streaming kernels: `vecadd`, `triad`, `saxpy`, `reduction`.
//!
//! Stand-ins for the bandwidth-bound kernels of GPU benchmark suites
//! (STREAM, vectorAdd, saxpy from cuBLAS-style codes, tree reductions).
//! Unit-stride grid-stride loops: perfect coalescing, near-zero reuse —
//! DRAM bandwidth and, under inline ECC, ECC-fetch amortization dominate.

use crate::common::{warp_load, warp_store, Layouter, WARP_THREADS};
use crate::SizeClass;
use ccraft_sim::trace::{KernelTrace, WarpOp, WarpTrace};

fn grid_stride<F>(name: &str, warps: u64, elems: u64, mut body: F) -> KernelTrace
where
    F: FnMut(&mut Vec<WarpOp>, u64),
{
    let traces = (0..warps)
        .map(|w| {
            let mut ops = Vec::new();
            let mut start = w * WARP_THREADS;
            while start < elems {
                body(&mut ops, start);
                start += warps * WARP_THREADS;
            }
            WarpTrace::new(ops)
        })
        .collect();
    KernelTrace::new(name, traces)
}

/// `C[i] = A[i] + B[i]` — two streaming loads, one streaming store.
pub fn vecadd(size: SizeClass, _seed: u64) -> KernelTrace {
    let (warps, mult) = size.scale();
    let elems = 65_536 * mult;
    let mut l = Layouter::new();
    let a = l.array(elems, 4);
    let b = l.array(elems, 4);
    let c = l.array(elems, 4);
    grid_stride("vecadd", warps, elems, |ops, start| {
        ops.extend(warp_load(&a, start));
        ops.extend(warp_load(&b, start));
        ops.push(WarpOp::Compute { cycles: 2 });
        ops.extend(warp_store(&c, start));
    })
}

/// STREAM triad: `A[i] = B[i] + s * C[i]`.
pub fn triad(size: SizeClass, _seed: u64) -> KernelTrace {
    let (warps, mult) = size.scale();
    let elems = 65_536 * mult;
    let mut l = Layouter::new();
    let a = l.array(elems, 4);
    let b = l.array(elems, 4);
    let c = l.array(elems, 4);
    grid_stride("triad", warps, elems, |ops, start| {
        ops.extend(warp_load(&b, start));
        ops.extend(warp_load(&c, start));
        ops.push(WarpOp::Compute { cycles: 4 });
        ops.extend(warp_store(&a, start));
    })
}

/// `Y[i] = a * X[i] + Y[i]` — read-modify-write of Y.
pub fn saxpy(size: SizeClass, _seed: u64) -> KernelTrace {
    let (warps, mult) = size.scale();
    let elems = 65_536 * mult;
    let mut l = Layouter::new();
    let x = l.array(elems, 4);
    let y = l.array(elems, 4);
    grid_stride("saxpy", warps, elems, |ops, start| {
        ops.extend(warp_load(&x, start));
        ops.extend(warp_load(&y, start));
        ops.push(WarpOp::Compute { cycles: 2 });
        ops.extend(warp_store(&y, start));
    })
}

/// Tree reduction: log passes over a shrinking array, streaming loads with
/// one store per pair of loads; later passes fit in cache.
pub fn reduction(size: SizeClass, _seed: u64) -> KernelTrace {
    let (warps, mult) = size.scale();
    let elems = 65_536 * mult;
    let mut l = Layouter::new();
    let data = l.array(elems, 4);
    let traces = (0..warps)
        .map(|w| {
            let mut ops = Vec::new();
            let mut n = elems;
            // Each pass halves the live prefix; stop when it gets tiny.
            while n >= WARP_THREADS * 2 {
                let half = n / 2;
                let mut start = w * WARP_THREADS;
                while start < half {
                    ops.extend(warp_load(&data, start));
                    ops.extend(warp_load(&data, half + start));
                    ops.push(WarpOp::Compute { cycles: 2 });
                    ops.extend(warp_store(&data, start));
                    start += warps * WARP_THREADS;
                }
                n = half;
            }
            WarpTrace::new(ops)
        })
        .collect();
    KernelTrace::new("reduction", traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vecadd_shape() {
        let t = vecadd(SizeClass::Tiny, 0);
        assert_eq!(t.name(), "vecadd");
        assert!(t.total_ops() > 0);
        // Footprint: 3 arrays x 64 Ki elems x 4 B = 768 KiB = 24576 atoms.
        assert_eq!(t.footprint_atoms(), 3 * 65_536 * 4 / 32);
        // Reads:writes = 2:1.
        assert!((t.write_fraction() - 1.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn triad_and_saxpy_shapes() {
        let t = triad(SizeClass::Tiny, 0);
        assert_eq!(t.footprint_atoms(), 3 * 65_536 * 4 / 32);
        let s = saxpy(SizeClass::Tiny, 0);
        assert_eq!(s.footprint_atoms(), 2 * 65_536 * 4 / 32);
    }

    #[test]
    fn every_atom_touched_exactly_once_per_array_pass() {
        // In vecadd each of A,B is loaded once and C stored once; total
        // accesses = footprint.
        let t = vecadd(SizeClass::Tiny, 0);
        assert_eq!(t.total_accesses(), t.footprint_atoms());
    }

    #[test]
    fn reduction_shrinks() {
        let t = reduction(SizeClass::Tiny, 0);
        // More accesses than one pass, fewer than three full passes
        // (sum of halving passes -> ~2x one pass of loads + stores).
        let one_pass_atoms = 65_536 * 4 / 32;
        assert!(t.total_accesses() > one_pass_atoms);
        assert!(t.total_accesses() < 4 * one_pass_atoms);
    }

    #[test]
    fn deterministic() {
        assert_eq!(vecadd(SizeClass::Tiny, 1), vecadd(SizeClass::Tiny, 2));
        assert_eq!(reduction(SizeClass::Tiny, 7), reduction(SizeClass::Tiny, 7));
    }

    #[test]
    fn warps_scale_with_size() {
        let tiny = vecadd(SizeClass::Tiny, 0);
        let small = vecadd(SizeClass::Small, 0);
        assert!(small.warps().len() > tiny.warps().len());
        assert!(small.footprint_atoms() > tiny.footprint_atoms());
    }
}
