//! Irregular kernels: `spmv`, `bfs`, `histogram`, `montecarlo`.
//!
//! Stand-ins for sparse linear algebra (CSR SpMV), graph traversal,
//! binning/atomics codes, and table-lookup Monte Carlo. Low spatial
//! locality means each fetched ECC atom amortizes over few data atoms —
//! the regime where inline-ECC overheads are largest and on-chip ECC reach
//! matters most.

use crate::common::{gather_load, store_from_addrs, warp_load, warp_store, Layouter, WARP_THREADS};
use crate::SizeClass;
use ccraft_sim::trace::{KernelTrace, WarpOp, WarpTrace};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// CSR sparse matrix-vector multiply `y = A x`: streaming row pointers and
/// column indices, random gathers into the dense vector `x`.
pub fn spmv(size: SizeClass, seed: u64) -> KernelTrace {
    let (warps, mult) = size.scale();
    let rows: u64 = 4_096 * mult;
    let nnz_per_row: u64 = 8;
    let mut l = Layouter::new();
    let row_ptr = l.array(rows + 1, 4);
    let col_idx = l.array(rows * nnz_per_row, 4);
    let vals = l.array(rows * nnz_per_row, 4);
    let x = l.array(rows, 4);
    let y = l.array(rows, 4);
    let traces = (0..warps)
        .map(|wid| {
            let mut rng = SmallRng::seed_from_u64(seed ^ (0x5b0a_0000 + wid));
            let mut ops = Vec::new();
            let mut r = wid * WARP_THREADS;
            while r < rows {
                // One row per lane: row_ptr loads are unit stride.
                ops.extend(warp_load(&row_ptr, r));
                // Walk the nonzeros: indices and values stream; x gathers
                // are random (band-limited to model some structure).
                for k in 0..nnz_per_row {
                    ops.extend(warp_load(&col_idx, r * nnz_per_row + k * WARP_THREADS));
                    ops.extend(warp_load(&vals, r * nnz_per_row + k * WARP_THREADS));
                    let gathers: Vec<u64> =
                        (0..WARP_THREADS).map(|_| rng.gen_range(0..rows)).collect();
                    ops.extend(gather_load(&x, &gathers));
                    ops.push(WarpOp::Compute { cycles: 4 });
                }
                ops.extend(warp_store(&y, r));
                r += warps * WARP_THREADS;
            }
            WarpTrace::new(ops)
        })
        .collect();
    KernelTrace::new("spmv", traces)
}

/// Level-synchronous BFS: stream the frontier, chase random adjacency
/// lists, scatter partial updates into the visited/next arrays.
pub fn bfs(size: SizeClass, seed: u64) -> KernelTrace {
    let (warps, mult) = size.scale();
    let nodes: u64 = 16_384 * mult;
    let degree: u64 = 8;
    let mut l = Layouter::new();
    let adj = l.array(nodes * degree, 4);
    let dist = l.array(nodes, 4);
    let frontier = l.array(nodes, 4);
    let levels = 4u64;
    let traces = (0..warps)
        .map(|wid| {
            let mut rng = SmallRng::seed_from_u64(seed ^ (0xbf50_0000 + wid));
            let mut ops = Vec::new();
            for level in 0..levels {
                // Each level visits a slice of the frontier.
                let span = nodes / (levels * warps * WARP_THREADS).max(1);
                for i in 0..span.max(1) {
                    let base =
                        (wid * WARP_THREADS + level * nodes / levels + i * warps * WARP_THREADS)
                            % nodes;
                    ops.extend(warp_load(&frontier, base));
                    // Chase each lane's adjacency run (random node).
                    let node: u64 = rng.gen_range(0..nodes);
                    ops.extend(warp_load(
                        &adj,
                        (node * degree) % (nodes * degree - WARP_THREADS),
                    ));
                    // Check distances of 32 random neighbours.
                    let probes: Vec<u64> =
                        (0..WARP_THREADS).map(|_| rng.gen_range(0..nodes)).collect();
                    ops.extend(gather_load(&dist, &probes));
                    ops.push(WarpOp::Compute { cycles: 3 });
                    // Scatter updates for a random subset of lanes.
                    let mut updates = Vec::new();
                    for _ in 0..WARP_THREADS {
                        if rng.gen_bool(0.25) {
                            updates.push(dist.elem(rng.gen_range(0..nodes)));
                        }
                    }
                    ops.extend(store_from_addrs(&updates, 4));
                }
            }
            WarpTrace::new(ops)
        })
        .collect();
    KernelTrace::new("bfs", traces)
}

/// Histogram: stream a large input, scatter partial stores into a small
/// hot bin table (stays cache-resident and dirty — a write-coalescing
/// showcase).
pub fn histogram(size: SizeClass, seed: u64) -> KernelTrace {
    let (warps, mult) = size.scale();
    let elems: u64 = 32_768 * mult;
    let bins: u64 = 4096;
    let mut l = Layouter::new();
    let input = l.array(elems, 4);
    let table = l.array(bins, 4);
    let traces = (0..warps)
        .map(|wid| {
            let mut rng = SmallRng::seed_from_u64(seed ^ (0x4157_0000 + wid));
            let mut ops = Vec::new();
            let mut p = wid * WARP_THREADS;
            while p < elems {
                ops.extend(warp_load(&input, p));
                ops.push(WarpOp::Compute { cycles: 2 });
                // Zipfian-ish binning: most updates hit a hot subset.
                let updates: Vec<u64> = (0..WARP_THREADS)
                    .map(|_| {
                        let hot = rng.gen_bool(0.8);
                        let b = if hot {
                            rng.gen_range(0..bins / 16)
                        } else {
                            rng.gen_range(0..bins)
                        };
                        table.elem(b)
                    })
                    .collect();
                ops.extend(store_from_addrs(&updates, 4));
                p += warps * WARP_THREADS;
            }
            WarpTrace::new(ops)
        })
        .collect();
    KernelTrace::new("histogram", traces)
}

/// Monte Carlo option pricing style kernel: heavy compute per step with
/// random table lookups; latency-bound rather than bandwidth-bound.
pub fn montecarlo(size: SizeClass, seed: u64) -> KernelTrace {
    let (warps, mult) = size.scale();
    let paths_per_warp: u64 = 2 * mult;
    let table_elems: u64 = 1 << 20; // 4 MiB lookup table
    let mut l = Layouter::new();
    let table = l.array(table_elems, 4);
    let out = l.array(warps * paths_per_warp, 4);
    let traces = (0..warps)
        .map(|wid| {
            let mut rng = SmallRng::seed_from_u64(seed ^ (0x3c40_0000 + wid));
            let mut ops = Vec::new();
            for p in 0..paths_per_warp {
                // Each path: several steps of compute + a random gather.
                for _ in 0..4 {
                    ops.push(WarpOp::Compute { cycles: 60 });
                    // Half-warp-wide random table probes.
                    let probes: Vec<u64> = (0..WARP_THREADS / 2)
                        .map(|_| rng.gen_range(0..table_elems))
                        .collect();
                    ops.extend(gather_load(&table, &probes));
                }
                ops.extend(warp_store(&out, wid * paths_per_warp + p));
            }
            WarpTrace::new(ops)
        })
        .collect();
    KernelTrace::new("montecarlo", traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmv_mixes_stream_and_gather() {
        let t = spmv(SizeClass::Tiny, 1);
        assert!(t.total_ops() > 500);
        // Gathers make accesses >> ops * 4-atom streams would suggest.
        assert!(t.memory_intensity() > 5.0);
        assert!(t.write_fraction() < 0.1);
    }

    #[test]
    fn bfs_is_scattered() {
        let t = bfs(SizeClass::Tiny, 1);
        assert!(t.total_ops() > 100);
        assert!(t.memory_intensity() > 6.0, "{}", t.memory_intensity());
    }

    #[test]
    fn histogram_writes_concentrate() {
        let t = histogram(SizeClass::Tiny, 1);
        // Bin table (4096 elems = 512 atoms) plus input footprint.
        let input_atoms = 131_072 * 4 / 32;
        assert!(t.footprint_atoms() <= input_atoms + 512 + 16);
        assert!(t.write_fraction() > 0.3, "{}", t.write_fraction());
    }

    #[test]
    fn montecarlo_is_compute_heavy() {
        let t = montecarlo(SizeClass::Tiny, 1);
        // Lots of Compute ops: intensity low-ish but gathers are wide.
        let compute_ops = t.total_ops()
            - t.warps()
                .iter()
                .flat_map(|w| w.ops())
                .filter(|o| o.is_memory())
                .count() as u64;
        assert!(compute_ops > t.total_ops() / 4);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(spmv(SizeClass::Tiny, 9), spmv(SizeClass::Tiny, 9));
        assert_eq!(bfs(SizeClass::Tiny, 9), bfs(SizeClass::Tiny, 9));
        assert_eq!(histogram(SizeClass::Tiny, 9), histogram(SizeClass::Tiny, 9));
        assert_eq!(
            montecarlo(SizeClass::Tiny, 9),
            montecarlo(SizeClass::Tiny, 9)
        );
        assert_ne!(spmv(SizeClass::Tiny, 9), spmv(SizeClass::Tiny, 10));
    }

    #[test]
    fn all_irregular_kernels_nonempty() {
        for t in [
            spmv(SizeClass::Tiny, 0),
            bfs(SizeClass::Tiny, 0),
            histogram(SizeClass::Tiny, 0),
            montecarlo(SizeClass::Tiny, 0),
        ] {
            assert!(t.total_accesses() > 0, "{} empty", t.name());
        }
    }
}
