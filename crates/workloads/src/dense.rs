//! Dense-compute kernels: `gemm`, `stencil2d`, `conv2d`, `transpose`.
//!
//! Stand-ins for tiled matrix multiply (sgemm), hotspot-style stencils,
//! convolution layers, and the classic strided-write transpose. These
//! kernels exercise cache reuse (gemm tiles, stencil halos) and — for
//! transpose — the pathological partial-sector write pattern that makes
//! inline-ECC read-modify-writes expensive.

use crate::common::{gather_load, store_from_addrs, warp_load, warp_store, Layouter, WARP_THREADS};
use crate::SizeClass;
use ccraft_sim::trace::{KernelTrace, WarpOp, WarpTrace};

/// Tiled dense matrix multiply `C = A x B` (square `n x n`, f32).
///
/// Each warp owns a 32-column strip of one C-tile row and walks the shared
/// K dimension in 32-wide tiles: loads of the A strip are private, loads of
/// the B tile are shared across the warps of a tile group (hitting in
/// L1/L2), and each tile step costs a block of compute.
pub fn gemm(size: SizeClass, _seed: u64) -> KernelTrace {
    let (warps, mult) = size.scale();
    let _ = mult;
    // n chosen so the matrices exceed the L2 while keeping the trace
    // within a few hundred thousand accesses.
    let n: u64 = match size {
        SizeClass::Tiny => 128,
        SizeClass::Small => 256,
        SizeClass::Full => 384,
    };
    let mut l = Layouter::new();
    let a = l.array(n * n, 4);
    let b = l.array(n * n, 4);
    let c = l.array(n * n, 4);
    let tiles = n / WARP_THREADS;
    let traces = (0..warps)
        .map(|w| {
            let mut ops = Vec::new();
            // Warp w handles C rows w, w+warps, ... one row-strip at a time.
            let mut row = w;
            while row < n {
                for jt in 0..tiles {
                    // C[row, jt*32 .. jt*32+32)
                    for kt in 0..tiles {
                        // A[row, kt*32..): 32 consecutive elements.
                        ops.extend(warp_load(&a, row * n + kt * WARP_THREADS));
                        // B[kt*32 + lane, jt*32..): the tile rows; model the
                        // per-step B access as one row of the B tile
                        // (shared across warps computing the same jt).
                        ops.extend(warp_load(
                            &b,
                            (kt * WARP_THREADS + row % WARP_THREADS) * n + jt * WARP_THREADS,
                        ));
                        ops.push(WarpOp::Compute { cycles: 24 });
                    }
                    ops.extend(warp_store(&c, row * n + jt * WARP_THREADS));
                }
                row += warps;
            }
            WarpTrace::new(ops)
        })
        .collect();
    KernelTrace::new("gemm", traces)
}

/// 5-point 2D stencil (hotspot-like) over an `h x w` grid, one output row
/// segment per warp step; vertical neighbours give cross-warp reuse.
pub fn stencil2d(size: SizeClass, _seed: u64) -> KernelTrace {
    let (warps, mult) = size.scale();
    let w_dim: u64 = 1024;
    let h_dim: u64 = 64 * mult;
    let mut l = Layouter::new();
    let src = l.array(h_dim * w_dim, 4);
    let dst = l.array(h_dim * w_dim, 4);
    let traces = (0..warps)
        .map(|wid| {
            let mut ops = Vec::new();
            let mut row = wid + 1;
            while row + 1 < h_dim {
                let mut col = 0;
                while col < w_dim {
                    let i = row * w_dim + col;
                    ops.extend(warp_load(&src, i)); // center (covers E/W too)
                    ops.extend(warp_load(&src, i - w_dim)); // north
                    ops.extend(warp_load(&src, i + w_dim)); // south
                    ops.push(WarpOp::Compute { cycles: 6 });
                    ops.extend(warp_store(&dst, i));
                    col += WARP_THREADS;
                }
                row += warps;
            }
            WarpTrace::new(ops)
        })
        .collect();
    KernelTrace::new("stencil2d", traces)
}

/// 3x3 convolution over an `h x w` single-channel image: sliding-window
/// loads with heavy horizontal overlap (cache-friendly), dense stores.
pub fn conv2d(size: SizeClass, _seed: u64) -> KernelTrace {
    let (warps, mult) = size.scale();
    let w_dim: u64 = 512;
    let h_dim: u64 = 96 * mult;
    let mut l = Layouter::new();
    let src = l.array(h_dim * w_dim, 4);
    let dst = l.array(h_dim * w_dim, 4);
    let traces = (0..warps)
        .map(|wid| {
            let mut ops = Vec::new();
            let mut row = wid + 1;
            while row + 1 < h_dim {
                let mut col = 0;
                while col < w_dim {
                    let i = row * w_dim + col;
                    // Three rows of the window; horizontal taps fall in the
                    // same atoms as the row loads.
                    ops.extend(warp_load(&src, i - w_dim));
                    ops.extend(warp_load(&src, i));
                    ops.extend(warp_load(&src, i + w_dim));
                    ops.push(WarpOp::Compute { cycles: 18 });
                    ops.extend(warp_store(&dst, i));
                    col += WARP_THREADS;
                }
                row += warps;
            }
            WarpTrace::new(ops)
        })
        .collect();
    KernelTrace::new("conv2d", traces)
}

/// Matrix transpose `B = A^T` (`n x n`, f32): coalesced row reads, strided
/// column writes — every store touches 32 distinct atoms partially,
/// maximizing fetch-on-write and ECC read-modify-write traffic.
pub fn transpose(size: SizeClass, _seed: u64) -> KernelTrace {
    let (warps, _mult) = size.scale();
    let n: u64 = match size {
        SizeClass::Tiny => 128,
        SizeClass::Small => 512,
        SizeClass::Full => 768,
    };
    let mut l = Layouter::new();
    let a = l.array(n * n, 4);
    let b = l.array(n * n, 4);
    let traces = (0..warps)
        .map(|wid| {
            let mut ops = Vec::new();
            let mut row = wid;
            while row < n {
                let mut col = 0;
                while col < n {
                    ops.extend(warp_load(&a, row * n + col));
                    ops.push(WarpOp::Compute { cycles: 1 });
                    // Lane t writes B[col + t, row]: stride-n scatter.
                    let addrs: Vec<u64> = (0..WARP_THREADS)
                        .filter(|t| col + t < n)
                        .map(|t| b.elem((col + t) * n + row))
                        .collect();
                    ops.extend(store_from_addrs(&addrs, 4));
                    col += WARP_THREADS;
                }
                row += warps;
            }
            WarpTrace::new(ops)
        })
        .collect();
    KernelTrace::new("transpose", traces)
}

/// K-means distance phase: stream points, gather a small centroid table
/// (cache-resident), write assignments — mixed streaming/gather.
pub fn kmeans(size: SizeClass, seed: u64) -> KernelTrace {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let (warps, mult) = size.scale();
    let points: u64 = 16_384 * mult;
    let k: u64 = 64;
    let dims: u64 = 8;
    let mut l = Layouter::new();
    // Structure-of-arrays layout: feature d of point p at d*points + p,
    // so per-dimension warp reads are unit stride.
    let data = l.array(points * dims, 4);
    let centroids = l.array(k * dims, 4);
    let assign = l.array(points, 4);
    let traces = (0..warps)
        .map(|wid| {
            let mut rng = SmallRng::seed_from_u64(seed ^ (wid + 1));
            let mut ops = Vec::new();
            let mut p = wid * WARP_THREADS;
            while p < points {
                // Each lane streams its point's features (SoA layout).
                for d in 0..dims {
                    ops.extend(gather_load(
                        &data,
                        &(0..WARP_THREADS)
                            .filter(|t| p + t < points)
                            .map(|t| d * points + p + t)
                            .collect::<Vec<_>>(),
                    ));
                }
                // Probe a few random centroids (hot, cache resident).
                for _ in 0..4 {
                    let c = rng.gen_range(0..k);
                    ops.extend(warp_load(&centroids, c * dims));
                }
                ops.push(WarpOp::Compute { cycles: 40 });
                ops.extend(warp_store(&assign, p));
                p += warps * WARP_THREADS;
            }
            WarpTrace::new(ops)
        })
        .collect();
    KernelTrace::new("kmeans", traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_has_reuse() {
        let t = gemm(SizeClass::Tiny, 0);
        // Total accesses far exceed the footprint: tiles are re-read.
        assert!(t.total_accesses() > 2 * t.footprint_atoms());
        assert!(t.memory_intensity() < 3.0, "gemm must carry compute");
    }

    #[test]
    fn stencil_touches_whole_grid() {
        let t = stencil2d(SizeClass::Tiny, 0);
        let grid_atoms = 64 * 1024 * 4 / 32;
        // src + dst minus untouched border rows.
        assert!(t.footprint_atoms() > grid_atoms);
        assert!(t.footprint_atoms() <= 2 * grid_atoms);
    }

    #[test]
    fn transpose_writes_are_partial_scatter() {
        let t = transpose(SizeClass::Tiny, 0);
        let mut partial_atoms = 0u64;
        let mut full_atoms = 0u64;
        for w in t.warps() {
            for op in w.ops() {
                if let ccraft_sim::trace::WarpOp::Store { atoms, full } = op {
                    if *full {
                        full_atoms += atoms.len() as u64;
                    } else {
                        partial_atoms += atoms.len() as u64;
                    }
                }
            }
        }
        assert!(
            partial_atoms > 10 * full_atoms.max(1),
            "transpose writes must scatter"
        );
    }

    #[test]
    fn conv_is_cache_friendly() {
        let t = conv2d(SizeClass::Tiny, 0);
        // 3 rows loaded per output row: accesses ~ 3x + stores ~ 1x of the
        // interior; row overlap means footprint << accesses.
        assert!(t.total_accesses() >= 3 * t.footprint_atoms() / 2);
    }

    #[test]
    fn kmeans_deterministic_per_seed() {
        let a = kmeans(SizeClass::Tiny, 42);
        let b = kmeans(SizeClass::Tiny, 42);
        assert_eq!(a, b);
        let c = kmeans(SizeClass::Tiny, 43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn all_dense_kernels_nonempty() {
        for t in [
            gemm(SizeClass::Tiny, 0),
            stencil2d(SizeClass::Tiny, 0),
            conv2d(SizeClass::Tiny, 0),
            transpose(SizeClass::Tiny, 0),
            kmeans(SizeClass::Tiny, 0),
        ] {
            assert!(t.total_ops() > 100, "{} too small", t.name());
            assert!(t.footprint_atoms() > 0);
        }
    }
}
