//! Shared building blocks for workload generators.

use ccraft_sim::coalesce::{coalesce, coalesce_writes};
use ccraft_sim::trace::WarpOp;
use ccraft_sim::types::ATOM_BYTES;

/// Threads per warp (fixed by the SIMT model).
pub const WARP_THREADS: u64 = 32;

/// A bump allocator for laying out kernel arrays in the logical address
/// space, aligned to 128-byte lines.
#[derive(Debug, Default)]
pub struct Layouter {
    next_byte: u64,
}

/// A contiguous array placed by the [`Layouter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayRef {
    base: u64,
    len_bytes: u64,
    elem_bytes: u64,
}

impl Layouter {
    /// Creates an empty layout starting at address zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves an array of `elems` elements of `elem_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics if `elems` or `elem_bytes` is zero.
    pub fn array(&mut self, elems: u64, elem_bytes: u64) -> ArrayRef {
        assert!(elems > 0 && elem_bytes > 0, "empty array");
        let base = self.next_byte;
        let len_bytes = elems * elem_bytes;
        // Align the next array to a line boundary.
        self.next_byte = (base + len_bytes).div_ceil(128) * 128;
        ArrayRef {
            base,
            len_bytes,
            elem_bytes,
        }
    }

    /// Total bytes laid out so far.
    pub fn total_bytes(&self) -> u64 {
        self.next_byte
    }
}

impl ArrayRef {
    /// Byte address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics (debug) on out-of-bounds access.
    #[inline]
    pub fn elem(&self, i: u64) -> u64 {
        debug_assert!(
            i * self.elem_bytes < self.len_bytes,
            "element {i} out of bounds"
        );
        self.base + i * self.elem_bytes
    }

    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.len_bytes / self.elem_bytes
    }

    /// `true` when the array holds no elements (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Footprint in atoms.
    pub fn atoms(&self) -> u64 {
        self.len_bytes.div_ceil(ATOM_BYTES)
    }
}

/// Builds a coalesced warp load of `WARP_THREADS` consecutive elements of
/// `arr` starting at element `start` (lanes beyond the array are inactive).
pub fn warp_load(arr: &ArrayRef, start: u64) -> Option<WarpOp> {
    let addrs: Vec<u64> = (0..WARP_THREADS)
        .map(|t| start + t)
        .filter(|&i| i < arr.len())
        .map(|i| arr.elem(i))
        .collect();
    if addrs.is_empty() {
        None
    } else {
        Some(WarpOp::Load {
            atoms: coalesce(&addrs),
        })
    }
}

/// Builds a coalesced warp store of consecutive elements, classifying each
/// touched atom as fully or partially covered. Emits one `Store` per
/// coverage class when both occur.
pub fn warp_store(arr: &ArrayRef, start: u64) -> Vec<WarpOp> {
    let addrs: Vec<u64> = (0..WARP_THREADS)
        .map(|t| start + t)
        .filter(|&i| i < arr.len())
        .map(|i| arr.elem(i))
        .collect();
    store_from_addrs(&addrs, arr.elem_bytes as u32)
}

/// Builds store op(s) from raw per-thread byte addresses.
pub fn store_from_addrs(addrs: &[u64], elem_bytes: u32) -> Vec<WarpOp> {
    if addrs.is_empty() {
        return Vec::new();
    }
    let covered = coalesce_writes(addrs, elem_bytes);
    let full: Vec<_> = covered
        .iter()
        .filter(|&&(_, f)| f)
        .map(|&(a, _)| a)
        .collect();
    let partial: Vec<_> = covered
        .iter()
        .filter(|&&(_, f)| !f)
        .map(|&(a, _)| a)
        .collect();
    let mut ops = Vec::new();
    if !full.is_empty() {
        ops.push(WarpOp::Store {
            atoms: full,
            full: true,
        });
    }
    if !partial.is_empty() {
        ops.push(WarpOp::Store {
            atoms: partial,
            full: false,
        });
    }
    ops
}

/// Builds a gather load from arbitrary per-thread element indices.
pub fn gather_load(arr: &ArrayRef, indices: &[u64]) -> Option<WarpOp> {
    let addrs: Vec<u64> = indices
        .iter()
        .filter(|&&i| i < arr.len())
        .map(|&i| arr.elem(i))
        .collect();
    if addrs.is_empty() {
        None
    } else {
        Some(WarpOp::Load {
            atoms: coalesce(&addrs),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccraft_sim::types::LogicalAtom;

    #[test]
    fn layouter_aligns_to_lines() {
        let mut l = Layouter::new();
        let a = l.array(10, 4); // 40 bytes
        let b = l.array(100, 4);
        assert_eq!(a.elem(0), 0);
        assert_eq!(b.elem(0) % 128, 0);
        assert!(b.elem(0) >= 40);
        assert_eq!(l.total_bytes() % 128, 0);
    }

    #[test]
    fn array_accessors() {
        let mut l = Layouter::new();
        let a = l.array(64, 4);
        assert_eq!(a.len(), 64);
        assert!(!a.is_empty());
        assert_eq!(a.atoms(), 8);
        assert_eq!(a.elem(1) - a.elem(0), 4);
    }

    #[test]
    fn warp_load_unit_stride_is_four_atoms() {
        let mut l = Layouter::new();
        let a = l.array(1024, 4);
        let op = warp_load(&a, 0).unwrap();
        assert_eq!(op.access_count(), 4);
        match op {
            WarpOp::Load { atoms } => assert_eq!(atoms[0], LogicalAtom(0)),
            _ => panic!("not a load"),
        }
    }

    #[test]
    fn warp_load_past_end_is_none() {
        let mut l = Layouter::new();
        let a = l.array(16, 4);
        assert!(warp_load(&a, 16).is_none());
        // Partially in-bounds warp loads only the live lanes.
        let op = warp_load(&a, 8).unwrap();
        assert_eq!(op.access_count(), 1);
    }

    #[test]
    fn warp_store_full_coverage() {
        let mut l = Layouter::new();
        let a = l.array(1024, 4);
        let ops = warp_store(&a, 0);
        assert_eq!(ops.len(), 1);
        match &ops[0] {
            WarpOp::Store { atoms, full } => {
                assert_eq!(atoms.len(), 4);
                assert!(*full);
            }
            _ => panic!("not a store"),
        }
    }

    #[test]
    fn tail_store_is_partial() {
        let mut l = Layouter::new();
        // 38 elements: the tail warp writes 6 elems = 24 B of the last atom.
        let a = l.array(38, 4);
        let ops = warp_store(&a, 32);
        assert_eq!(ops.len(), 1);
        match &ops[0] {
            WarpOp::Store { full, .. } => assert!(!*full),
            _ => panic!("not a store"),
        }
    }

    #[test]
    fn gather_load_dedups_atoms() {
        let mut l = Layouter::new();
        let a = l.array(1024, 4);
        let op = gather_load(&a, &[0, 1, 2, 800, 0]).unwrap();
        // Elements 0,1,2 share atom 0; 800 is its own atom.
        assert_eq!(op.access_count(), 2);
    }

    #[test]
    fn empty_inputs_produce_no_ops() {
        let mut l = Layouter::new();
        let a = l.array(8, 4);
        assert!(gather_load(&a, &[]).is_none());
        assert!(store_from_addrs(&[], 4).is_empty());
    }
}
