//! Fault-injection error models for reliability campaigns.
//!
//! Error patterns follow the taxonomy of GPU DRAM beam-testing studies
//! (Sullivan et al., MICRO'21): independent single-bit upsets, spatially
//! adjacent multi-bit bursts (shared bitline/sense-amp structures), and
//! whole-symbol errors modeling a failing device, pin, or TSV.
//!
//! An [`ErrorPattern`] is deterministic given its RNG; campaigns seed one
//! RNG per trial so results are reproducible.
//!
//! # Examples
//!
//! ```
//! use ccraft_ecc::inject::{ErrorPattern, Injector};
//! use rand::SeedableRng;
//! use rand::rngs::SmallRng;
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let inj = Injector::new(ErrorPattern::RandomBits { count: 2 });
//! let mut word = [0u8; 8];
//! let flipped = inj.apply(&mut word, &mut rng);
//! assert_eq!(flipped.len(), 2);
//! ```

use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;

/// A fault pattern to inject into one codeword buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorPattern {
    /// `count` independent uniformly-placed bit flips (distinct positions).
    RandomBits {
        /// Number of distinct bits to flip.
        count: u32,
    },
    /// A burst of `len` *adjacent* bit positions, all flipped.
    AdjacentBurst {
        /// Burst length in bits.
        len: u32,
    },
    /// A random multi-bit error confined to one aligned 8-bit symbol
    /// (models a chip/pin failure in a symbol-interleaved layout).
    SymbolError,
    /// Every bit contributed by one "chip": positions `c, c+stride,
    /// c+2*stride, ...` for a random chip lane `c`, each flipped with
    /// probability 1/2 (at least one guaranteed).
    ChipLane {
        /// Number of chip lanes the word is striped across.
        stride: u32,
    },
}

impl fmt::Display for ErrorPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorPattern::RandomBits { count } => write!(f, "{count} random bits"),
            ErrorPattern::AdjacentBurst { len } => write!(f, "{len}-bit adjacent burst"),
            ErrorPattern::SymbolError => write!(f, "single-symbol error"),
            ErrorPattern::ChipLane { stride } => write!(f, "chip-lane error (x{stride})"),
        }
    }
}

/// Applies [`ErrorPattern`]s to byte buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injector {
    pattern: ErrorPattern,
}

impl Injector {
    /// Creates an injector for the given pattern.
    pub fn new(pattern: ErrorPattern) -> Self {
        Injector { pattern }
    }

    /// The configured pattern.
    pub fn pattern(&self) -> ErrorPattern {
        self.pattern
    }

    /// Flips bits in `buf` according to the pattern, returning the flipped
    /// bit positions (bit `i` = byte `i / 8`, bit `i % 8`), sorted.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is empty or smaller than the pattern requires.
    pub fn apply<R: Rng + ?Sized>(&self, buf: &mut [u8], rng: &mut R) -> Vec<u32> {
        assert!(!buf.is_empty(), "cannot inject into an empty buffer");
        let nbits = (buf.len() * 8) as u32;
        let mut positions: Vec<u32> = match self.pattern {
            ErrorPattern::RandomBits { count } => {
                assert!(count <= nbits, "more flips than bits");
                let mut all: Vec<u32> = (0..nbits).collect();
                all.partial_shuffle(rng, count as usize).0.to_vec()
            }
            ErrorPattern::AdjacentBurst { len } => {
                assert!(len >= 1 && len <= nbits, "burst length out of range");
                let start = rng.gen_range(0..=(nbits - len));
                (start..start + len).collect()
            }
            ErrorPattern::SymbolError => {
                let symbol = rng.gen_range(0..buf.len() as u32);
                let mask: u8 = rng.gen_range(1..=255);
                (0..8)
                    .filter(|&b| mask >> b & 1 != 0)
                    .map(|b| symbol * 8 + b)
                    .collect()
            }
            ErrorPattern::ChipLane { stride } => {
                assert!(stride >= 1 && stride <= nbits, "stride out of range");
                let lane = rng.gen_range(0..stride);
                let candidates: Vec<u32> = (lane..nbits).step_by(stride as usize).collect();
                assert!(!candidates.is_empty());
                let mut picked: Vec<u32> = candidates
                    .iter()
                    .copied()
                    .filter(|_| rng.gen_bool(0.5))
                    .collect();
                if picked.is_empty() {
                    picked.push(*candidates.choose(rng).expect("nonempty"));
                }
                picked
            }
        };
        positions.sort_unstable();
        positions.dedup();
        for &p in &positions {
            buf[(p / 8) as usize] ^= 1 << (p % 8);
        }
        positions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn random_bits_flips_exact_count() {
        let inj = Injector::new(ErrorPattern::RandomBits { count: 3 });
        for seed in 0..50 {
            let mut buf = [0u8; 8];
            let pos = inj.apply(&mut buf, &mut rng(seed));
            assert_eq!(pos.len(), 3);
            let total: u32 = buf.iter().map(|b| b.count_ones()).sum();
            assert_eq!(total, 3, "seed {seed}");
        }
    }

    #[test]
    fn burst_is_contiguous() {
        let inj = Injector::new(ErrorPattern::AdjacentBurst { len: 5 });
        for seed in 0..50 {
            let mut buf = [0u8; 8];
            let pos = inj.apply(&mut buf, &mut rng(seed));
            assert_eq!(pos.len(), 5);
            for w in pos.windows(2) {
                assert_eq!(w[1], w[0] + 1, "seed {seed}: not contiguous");
            }
        }
    }

    #[test]
    fn symbol_error_confined_to_one_byte() {
        let inj = Injector::new(ErrorPattern::SymbolError);
        for seed in 0..50 {
            let mut buf = [0u8; 16];
            let pos = inj.apply(&mut buf, &mut rng(seed));
            assert!(!pos.is_empty());
            let bytes: std::collections::HashSet<u32> = pos.iter().map(|p| p / 8).collect();
            assert_eq!(bytes.len(), 1, "seed {seed}: spans multiple symbols");
            assert_eq!(buf.iter().filter(|&&b| b != 0).count(), 1);
        }
    }

    #[test]
    fn chip_lane_respects_stride() {
        let inj = Injector::new(ErrorPattern::ChipLane { stride: 4 });
        for seed in 0..50 {
            let mut buf = [0u8; 8];
            let pos = inj.apply(&mut buf, &mut rng(seed));
            assert!(!pos.is_empty());
            let lane = pos[0] % 4;
            assert!(
                pos.iter().all(|p| p % 4 == lane),
                "seed {seed}: positions cross lanes"
            );
        }
    }

    #[test]
    fn application_is_self_inverse() {
        let inj = Injector::new(ErrorPattern::RandomBits { count: 4 });
        let original: Vec<u8> = (0..32).collect();
        let mut buf = original.clone();
        let mut r = rng(99);
        let pos = inj.apply(&mut buf, &mut r);
        assert_ne!(buf, original);
        for &p in &pos {
            buf[(p / 8) as usize] ^= 1 << (p % 8);
        }
        assert_eq!(buf, original);
    }

    #[test]
    fn deterministic_given_seed() {
        let inj = Injector::new(ErrorPattern::AdjacentBurst { len: 3 });
        let mut a = [0u8; 8];
        let mut b = [0u8; 8];
        inj.apply(&mut a, &mut rng(5));
        inj.apply(&mut b, &mut rng(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty buffer")]
    fn rejects_empty_buffer() {
        let inj = Injector::new(ErrorPattern::SymbolError);
        inj.apply(&mut [], &mut rng(0));
    }

    #[test]
    fn display_nonempty() {
        for p in [
            ErrorPattern::RandomBits { count: 1 },
            ErrorPattern::AdjacentBurst { len: 2 },
            ErrorPattern::SymbolError,
            ErrorPattern::ChipLane { stride: 4 },
        ] {
            assert!(!p.to_string().is_empty());
        }
    }
}
