//! Fault-injection error models for reliability campaigns.
//!
//! Error patterns follow the taxonomy of GPU DRAM beam-testing studies
//! (Sullivan et al., MICRO'21): independent single-bit upsets, spatially
//! adjacent multi-bit bursts (shared bitline/sense-amp structures), and
//! whole-symbol errors modeling a failing device, pin, or TSV.
//!
//! An [`ErrorPattern`] is deterministic given its RNG; campaigns seed one
//! RNG per trial so results are reproducible.
//!
//! # Examples
//!
//! ```
//! use ccraft_ecc::inject::{ErrorPattern, Injector};
//! use rand::SeedableRng;
//! use rand::rngs::SmallRng;
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let inj = Injector::new(ErrorPattern::RandomBits { count: 2 });
//! let mut word = [0u8; 8];
//! let flipped = inj.apply(&mut word, &mut rng);
//! assert_eq!(flipped.len(), 2);
//! ```

use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;

/// A fault pattern to inject into one codeword buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorPattern {
    /// `count` independent uniformly-placed bit flips (distinct positions).
    RandomBits {
        /// Number of distinct bits to flip.
        count: u32,
    },
    /// A burst of `len` *adjacent* bit positions, all flipped.
    AdjacentBurst {
        /// Burst length in bits.
        len: u32,
    },
    /// A random multi-bit error confined to one aligned 8-bit symbol
    /// (models a chip/pin failure in a symbol-interleaved layout).
    SymbolError,
    /// Every bit contributed by one "chip": positions `c, c+stride,
    /// c+2*stride, ...` for a random chip lane `c`, each flipped with
    /// probability 1/2 (at least one guaranteed).
    ChipLane {
        /// Number of chip lanes the word is striped across.
        stride: u32,
    },
}

impl fmt::Display for ErrorPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorPattern::RandomBits { count } => write!(f, "{count} random bits"),
            ErrorPattern::AdjacentBurst { len } => write!(f, "{len}-bit adjacent burst"),
            ErrorPattern::SymbolError => write!(f, "single-symbol error"),
            ErrorPattern::ChipLane { stride } => write!(f, "chip-lane error (x{stride})"),
        }
    }
}

/// Applies [`ErrorPattern`]s to byte buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injector {
    pattern: ErrorPattern,
}

impl Injector {
    /// Creates an injector for the given pattern.
    pub fn new(pattern: ErrorPattern) -> Self {
        Injector { pattern }
    }

    /// The configured pattern.
    pub fn pattern(&self) -> ErrorPattern {
        self.pattern
    }

    /// Flips bits in `buf` according to the pattern, returning the flipped
    /// bit positions (bit `i` = byte `i / 8`, bit `i % 8`), sorted.
    ///
    /// Patterns sized beyond the buffer are clamped to its bit-width rather
    /// than panicking or wrapping: `RandomBits { count }` flips at most
    /// `nbits` distinct bits (and `count == 0` is a no-op), an
    /// `AdjacentBurst` longer than the buffer covers the whole buffer, and
    /// a burst placed near the end stays inside it — bursts never wrap
    /// around the codeword boundary. `ChipLane` strides wider than the
    /// buffer degenerate to a single-bit lane. Requested-vs-clamped
    /// mismatches trip a `debug_assert` so test builds still catch
    /// misconfigured campaigns.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is empty.
    pub fn apply<R: Rng + ?Sized>(&self, buf: &mut [u8], rng: &mut R) -> Vec<u32> {
        assert!(!buf.is_empty(), "cannot inject into an empty buffer");
        let nbits = (buf.len() * 8) as u32;
        let mut positions: Vec<u32> = match self.pattern {
            ErrorPattern::RandomBits { count } => {
                debug_assert!(count <= nbits, "more flips requested than bits in buffer");
                let count = count.min(nbits);
                if count == 0 {
                    Vec::new()
                } else {
                    let mut all: Vec<u32> = (0..nbits).collect();
                    all.partial_shuffle(rng, count as usize).0.to_vec()
                }
            }
            ErrorPattern::AdjacentBurst { len } => {
                debug_assert!(
                    len >= 1 && len <= nbits,
                    "burst length outside buffer bit-width"
                );
                let len = len.clamp(1, nbits);
                // `start` is drawn so the burst always fits: a burst touching
                // the last bit ends there; it never wraps to bit 0.
                let start = rng.gen_range(0..=(nbits - len));
                (start..start + len).collect()
            }
            ErrorPattern::SymbolError => {
                let symbol = rng.gen_range(0..buf.len() as u32);
                let mask: u8 = rng.gen_range(1..=255);
                (0..8)
                    .filter(|&b| mask >> b & 1 != 0)
                    .map(|b| symbol * 8 + b)
                    .collect()
            }
            ErrorPattern::ChipLane { stride } => {
                debug_assert!(
                    stride >= 1 && stride <= nbits,
                    "stride outside buffer bit-width"
                );
                let stride = stride.clamp(1, nbits);
                let lane = rng.gen_range(0..stride);
                let candidates: Vec<u32> = (lane..nbits).step_by(stride as usize).collect();
                debug_assert!(!candidates.is_empty());
                let mut picked: Vec<u32> = candidates
                    .iter()
                    .copied()
                    .filter(|_| rng.gen_bool(0.5))
                    .collect();
                if picked.is_empty() {
                    let idx = rng.gen_range(0..candidates.len());
                    picked.push(candidates[idx]);
                }
                picked
            }
        };
        positions.sort_unstable();
        positions.dedup();
        for &p in &positions {
            buf[(p / 8) as usize] ^= 1 << (p % 8);
        }
        positions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn random_bits_flips_exact_count() {
        let inj = Injector::new(ErrorPattern::RandomBits { count: 3 });
        for seed in 0..50 {
            let mut buf = [0u8; 8];
            let pos = inj.apply(&mut buf, &mut rng(seed));
            assert_eq!(pos.len(), 3);
            let total: u32 = buf.iter().map(|b| b.count_ones()).sum();
            assert_eq!(total, 3, "seed {seed}");
        }
    }

    #[test]
    fn burst_is_contiguous() {
        let inj = Injector::new(ErrorPattern::AdjacentBurst { len: 5 });
        for seed in 0..50 {
            let mut buf = [0u8; 8];
            let pos = inj.apply(&mut buf, &mut rng(seed));
            assert_eq!(pos.len(), 5);
            for w in pos.windows(2) {
                assert_eq!(w[1], w[0] + 1, "seed {seed}: not contiguous");
            }
        }
    }

    #[test]
    fn symbol_error_confined_to_one_byte() {
        let inj = Injector::new(ErrorPattern::SymbolError);
        for seed in 0..50 {
            let mut buf = [0u8; 16];
            let pos = inj.apply(&mut buf, &mut rng(seed));
            assert!(!pos.is_empty());
            let bytes: std::collections::BTreeSet<u32> = pos.iter().map(|p| p / 8).collect();
            assert_eq!(bytes.len(), 1, "seed {seed}: spans multiple symbols");
            assert_eq!(buf.iter().filter(|&&b| b != 0).count(), 1);
        }
    }

    #[test]
    fn chip_lane_respects_stride() {
        let inj = Injector::new(ErrorPattern::ChipLane { stride: 4 });
        for seed in 0..50 {
            let mut buf = [0u8; 8];
            let pos = inj.apply(&mut buf, &mut rng(seed));
            assert!(!pos.is_empty());
            let lane = pos[0] % 4;
            assert!(
                pos.iter().all(|p| p % 4 == lane),
                "seed {seed}: positions cross lanes"
            );
        }
    }

    #[test]
    fn application_is_self_inverse() {
        let inj = Injector::new(ErrorPattern::RandomBits { count: 4 });
        let original: Vec<u8> = (0..32).collect();
        let mut buf = original.clone();
        let mut r = rng(99);
        let pos = inj.apply(&mut buf, &mut r);
        assert_ne!(buf, original);
        for &p in &pos {
            buf[(p / 8) as usize] ^= 1 << (p % 8);
        }
        assert_eq!(buf, original);
    }

    #[test]
    fn deterministic_given_seed() {
        let inj = Injector::new(ErrorPattern::AdjacentBurst { len: 3 });
        let mut a = [0u8; 8];
        let mut b = [0u8; 8];
        inj.apply(&mut a, &mut rng(5));
        inj.apply(&mut b, &mut rng(5));
        assert_eq!(a, b);
    }

    #[test]
    fn burst_at_codeword_boundary_stays_in_bounds() {
        // A burst as long as the buffer must cover exactly the whole buffer;
        // shorter bursts placed anywhere must never produce a position past
        // the last bit (i.e. no wrap-around).
        let nbits = 64u32;
        let full = Injector::new(ErrorPattern::AdjacentBurst { len: nbits });
        let mut buf = [0u8; 8];
        let pos = full.apply(&mut buf, &mut rng(1));
        assert_eq!(pos, (0..nbits).collect::<Vec<_>>());
        assert!(buf.iter().all(|&b| b == 0xFF));

        let near = Injector::new(ErrorPattern::AdjacentBurst { len: nbits - 1 });
        for seed in 0..100 {
            let mut buf = [0u8; 8];
            let pos = near.apply(&mut buf, &mut rng(seed));
            assert_eq!(pos.len(), (nbits - 1) as usize);
            assert!(*pos.last().unwrap() < nbits, "seed {seed}: wrapped");
        }
    }

    #[test]
    fn random_bits_full_width_flips_every_bit() {
        let inj = Injector::new(ErrorPattern::RandomBits { count: 64 });
        let mut buf = [0u8; 8];
        let pos = inj.apply(&mut buf, &mut rng(3));
        assert_eq!(pos.len(), 64);
        assert!(buf.iter().all(|&b| b == 0xFF));
    }

    #[test]
    fn random_bits_zero_count_is_noop() {
        let inj = Injector::new(ErrorPattern::RandomBits { count: 0 });
        let mut buf = [0xA5u8; 8];
        let pos = inj.apply(&mut buf, &mut rng(4));
        assert!(pos.is_empty());
        assert!(buf.iter().all(|&b| b == 0xA5));
    }

    // Clamping of oversize patterns trips a debug_assert in debug builds,
    // so the release-mode contract is verified only there.
    #[cfg(not(debug_assertions))]
    #[test]
    fn oversize_patterns_clamp_to_buffer_width() {
        let mut buf = [0u8; 2];
        let pos =
            Injector::new(ErrorPattern::RandomBits { count: 1000 }).apply(&mut buf, &mut rng(5));
        assert_eq!(pos.len(), 16);
        let mut buf = [0u8; 2];
        let pos =
            Injector::new(ErrorPattern::AdjacentBurst { len: 1000 }).apply(&mut buf, &mut rng(6));
        assert_eq!(pos, (0..16).collect::<Vec<_>>());
        let mut buf = [0u8; 2];
        let pos =
            Injector::new(ErrorPattern::ChipLane { stride: 1000 }).apply(&mut buf, &mut rng(7));
        assert!(!pos.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty buffer")]
    fn rejects_empty_buffer() {
        let inj = Injector::new(ErrorPattern::SymbolError);
        inj.apply(&mut [], &mut rng(0));
    }

    #[test]
    fn display_nonempty() {
        for p in [
            ErrorPattern::RandomBits { count: 1 },
            ErrorPattern::AdjacentBurst { len: 2 },
            ErrorPattern::SymbolError,
            ErrorPattern::ChipLane { stride: 4 },
        ] {
            assert!(!p.to_string().is_empty());
        }
    }
}
