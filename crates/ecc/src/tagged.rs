//! Alias-free tagged ECC (implicit memory tagging).
//!
//! Following the Implicit Memory Tagging approach (Sullivan et al.,
//! ISCA'23), a memory tag is folded into the ECC check bits instead of being
//! stored as separate metadata: the writer XORs a *tag signature* into the
//! check bits, and the reader XORs the signature of the tag it *expects*
//! before decoding. If the tags match the signatures cancel and decoding
//! proceeds normally; if they differ, the residual signature delta must be
//! **alias-free** — guaranteed to decode as an error, never as a clean or
//! silently "corrected" word (in the absence of data errors).
//!
//! # Construction
//!
//! [`TaggedSecDed`] builds on the extended-Hamming SEC-DED codec. Signatures
//! are chosen with *even* bit weight over the check byte(s). The XOR of two
//! distinct even-weight signatures is a non-zero even-weight delta, which
//! the SEC-DED decoder classifies as a detected-uncorrectable pattern
//! (non-zero syndrome with satisfied overall parity) — never as clean and
//! never as a single-bit correction. This yields up to `2^(c-1)` usable
//! tags for `c` check bits: **7 tag bits** on the (72,64) code, more than
//! the 4 bits of industry memory-tagging implementations.
//!
//! When a data error co-occurs with a tag mismatch the combined pattern may
//! exceed the code's guarantees, exactly as in the published AFT-ECC
//! analysis; the fault-injection harness quantifies this empirically.
//!
//! # Examples
//!
//! ```
//! use ccraft_ecc::code::DecodeOutcome;
//! use ccraft_ecc::tagged::TaggedSecDed;
//!
//! let t = TaggedSecDed::new(4).unwrap();
//! let data = *b"pointers";
//! let check = t.encode(&data, 0x9);
//! let mut buf = data;
//! assert_eq!(t.decode(&mut buf, &check, 0x9), DecodeOutcome::Clean);
//! // Reading through a stale/forged pointer with the wrong tag:
//! assert_eq!(t.decode(&mut buf, &check, 0x3), DecodeOutcome::TagMismatch);
//! ```

use crate::code::{Codec, DecodeOutcome};
use crate::secded::SecDed64;
use std::fmt;

/// Maximum tag width supported by the (72,64) construction.
pub const MAX_TAG_BITS: u32 = 7;

/// Error constructing a [`TaggedSecDed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagWidthError {
    requested: u32,
}

impl fmt::Display for TagWidthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tag width {} exceeds the alias-free limit of {MAX_TAG_BITS} bits",
            self.requested
        )
    }
}

impl std::error::Error for TagWidthError {}

/// SEC-DED(72,64) with an implicit, alias-free memory tag.
#[derive(Debug, Clone)]
pub struct TaggedSecDed {
    inner: SecDed64,
    tag_bits: u32,
}

impl TaggedSecDed {
    /// Creates a tagged codec carrying `tag_bits` of tag per codeword.
    ///
    /// # Errors
    ///
    /// Returns [`TagWidthError`] if `tag_bits` is zero or exceeds
    /// [`MAX_TAG_BITS`].
    pub fn new(tag_bits: u32) -> Result<Self, TagWidthError> {
        if tag_bits == 0 || tag_bits > MAX_TAG_BITS {
            return Err(TagWidthError {
                requested: tag_bits,
            });
        }
        Ok(TaggedSecDed {
            inner: SecDed64::new(),
            tag_bits,
        })
    }

    /// Number of tag bits carried per codeword.
    pub fn tag_bits(&self) -> u32 {
        self.tag_bits
    }

    /// Number of distinct tags.
    pub fn tag_space(&self) -> u32 {
        1 << self.tag_bits
    }

    /// The even-weight signature of `tag`: tag bits in positions 1..=7 and
    /// a parity bit in position 0 forcing even total weight.
    fn signature(&self, tag: u8) -> u8 {
        debug_assert!((tag as u32) < self.tag_space());
        let body = tag << 1;
        let parity = (body.count_ones() % 2) as u8;
        body | parity
    }

    /// Encodes `data` under `tag`, returning the tagged check byte(s).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != 8` or `tag` is outside the tag space.
    pub fn encode(&self, data: &[u8], tag: u8) -> Vec<u8> {
        assert!(
            (tag as u32) < self.tag_space(),
            "tag {tag:#x} outside {}-bit tag space",
            self.tag_bits
        );
        let mut check = self.inner.encode(data);
        check[0] ^= self.signature(tag);
        check
    }

    /// Decodes `data`/`check` expecting `expected_tag`.
    ///
    /// Outcomes:
    /// * tag matches, data clean/correctable → `Clean` / `Corrected`
    /// * tag mismatch, data clean → `TagMismatch` (guaranteed, alias-free)
    /// * heavier combined patterns → `DetectedUncorrectable` (or, rarely,
    ///   mis-resolution, quantified by the fault-injection campaign)
    ///
    /// # Panics
    ///
    /// Panics on slice-length mismatch or out-of-range `expected_tag`.
    pub fn decode(&self, data: &mut [u8], check: &[u8], expected_tag: u8) -> DecodeOutcome {
        assert!(
            (expected_tag as u32) < self.tag_space(),
            "tag {expected_tag:#x} outside {}-bit tag space",
            self.tag_bits
        );
        let mut untagged = check.to_vec();
        untagged[0] ^= self.signature(expected_tag);
        let outcome = self.inner.decode(data, &untagged);
        if outcome != DecodeOutcome::DetectedUncorrectable {
            return outcome;
        }
        // Distinguish a pure tag mismatch from a data error: if decoding
        // succeeds cleanly under some *other* tag, the stored word is intact
        // and the access used the wrong tag. This probe mirrors what IMT
        // hardware derives directly from the syndrome class.
        for other in 0..self.tag_space() as u8 {
            if other == expected_tag {
                continue;
            }
            let mut probe_check = check.to_vec();
            probe_check[0] ^= self.signature(other);
            let mut probe_data = data.to_vec();
            if self.inner.decode(&mut probe_data, &probe_check) == DecodeOutcome::Clean {
                return DecodeOutcome::TagMismatch;
            }
        }
        DecodeOutcome::DetectedUncorrectable
    }

    /// Data bytes per codeword (8).
    pub fn data_len(&self) -> usize {
        self.inner.data_len()
    }

    /// Check bytes per codeword (1) — tagging adds **zero** storage.
    pub fn check_len(&self) -> usize {
        self.inner.check_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_limits() {
        assert!(TaggedSecDed::new(1).is_ok());
        assert!(TaggedSecDed::new(7).is_ok());
        assert!(TaggedSecDed::new(0).is_err());
        assert!(TaggedSecDed::new(8).is_err());
        let err = TaggedSecDed::new(9).unwrap_err();
        assert!(err.to_string().contains("9"));
    }

    #[test]
    fn signatures_are_even_weight_and_distinct() {
        let t = TaggedSecDed::new(7).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for tag in 0..t.tag_space() as u8 {
            let sig = t.signature(tag);
            assert_eq!(sig.count_ones() % 2, 0, "tag {tag} sig {sig:#x} odd weight");
            assert!(seen.insert(sig), "duplicate signature for tag {tag}");
        }
    }

    #[test]
    fn matching_tag_round_trips() {
        let t = TaggedSecDed::new(4).unwrap();
        let data = *b"\x01\x02\x03\x04\x05\x06\x07\x08";
        for tag in 0..16u8 {
            let check = t.encode(&data, tag);
            let mut buf = data;
            assert_eq!(t.decode(&mut buf, &check, tag), DecodeOutcome::Clean);
            assert_eq!(buf, data);
        }
    }

    #[test]
    fn every_tag_mismatch_is_detected_alias_free() {
        // The headline IMT property: with clean data, *no* pair of distinct
        // tags ever aliases to Clean or Corrected.
        let t = TaggedSecDed::new(7).unwrap();
        let data = *b"deadbeef";
        for stored in 0..t.tag_space() as u8 {
            let check = t.encode(&data, stored);
            for expected in 0..t.tag_space() as u8 {
                if expected == stored {
                    continue;
                }
                let mut buf = data;
                let outcome = t.decode(&mut buf, &check, expected);
                assert_eq!(
                    outcome,
                    DecodeOutcome::TagMismatch,
                    "stored {stored} expected {expected}: {outcome:?}"
                );
                assert_eq!(buf, data, "data modified on tag mismatch");
            }
        }
    }

    #[test]
    fn single_bit_error_with_matching_tag_still_corrects() {
        let t = TaggedSecDed::new(4).unwrap();
        let data = *b"GPUmem64";
        let check = t.encode(&data, 0xA);
        for byte in 0..8 {
            for bit in 0..8 {
                let mut buf = data;
                buf[byte] ^= 1 << bit;
                let outcome = t.decode(&mut buf, &check, 0xA);
                assert_eq!(outcome, DecodeOutcome::Corrected { flipped_bits: 1 });
                assert_eq!(buf, data);
            }
        }
    }

    #[test]
    fn zero_storage_overhead() {
        let t = TaggedSecDed::new(7).unwrap();
        assert_eq!(t.data_len(), 8);
        assert_eq!(t.check_len(), 1); // same as untagged SEC-DED(72,64)
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_out_of_range_tag() {
        let t = TaggedSecDed::new(2).unwrap();
        let _ = t.encode(b"12345678", 4);
    }
}
