//! Common codec abstractions shared by every ECC implementation in this
//! crate.
//!
//! A *codec* protects a fixed-size block of data bytes with a fixed-size
//! block of check bytes. Codecs are **systematic**: the data bytes are
//! stored unmodified and the check bytes are stored separately, which is how
//! inline-ECC memory systems lay codewords out in DRAM (data atoms and ECC
//! atoms are distinct transactions).
//!
//! # Examples
//!
//! ```
//! use ccraft_ecc::code::{Codec, DecodeOutcome};
//! use ccraft_ecc::secded::SecDed64;
//!
//! let codec = SecDed64::new();
//! let mut data = *b"CacheCr!";
//! let check = codec.encode(&data);
//! data[3] ^= 0x10; // inject a single-bit error
//! let outcome = codec.decode(&mut data, &check);
//! assert_eq!(outcome, DecodeOutcome::Corrected { flipped_bits: 1 });
//! assert_eq!(&data, b"CacheCr!");
//! ```

use std::fmt;

/// Result of decoding one codeword.
///
/// A decoder can only report what its algebra allows it to see: a
/// sufficiently large error may alias to `Clean` or to a bogus `Corrected`
/// (silent data corruption). Distinguishing those cases from genuine
/// success is the job of the fault-injection harness, which compares the
/// decoded data against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeOutcome {
    /// The syndrome was zero: no error observed.
    Clean,
    /// An error was observed and corrected in place.
    Corrected {
        /// Number of bits the decoder flipped in the *data* portion.
        /// Corrections confined to the check bytes report zero.
        flipped_bits: u32,
    },
    /// An error was observed that exceeds the correction capability.
    /// The data must not be consumed (detected uncorrectable error, DUE).
    DetectedUncorrectable,
    /// Tagged codecs only: no data error, but the stored memory tag does
    /// not match the expected tag (a memory-safety violation).
    TagMismatch,
}

impl DecodeOutcome {
    /// `true` when the data may be consumed (clean or corrected).
    pub fn is_usable(self) -> bool {
        matches!(self, DecodeOutcome::Clean | DecodeOutcome::Corrected { .. })
    }
}

impl fmt::Display for DecodeOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeOutcome::Clean => write!(f, "clean"),
            DecodeOutcome::Corrected { flipped_bits } => {
                write!(f, "corrected ({flipped_bits} data bits)")
            }
            DecodeOutcome::DetectedUncorrectable => write!(f, "detected uncorrectable"),
            DecodeOutcome::TagMismatch => write!(f, "tag mismatch"),
        }
    }
}

/// A systematic block-ECC codec.
///
/// Implementations are deterministic and side-effect free; the same
/// `(data, check)` pair always decodes to the same outcome.
pub trait Codec: fmt::Debug + Send + Sync {
    /// Number of data bytes per codeword.
    fn data_len(&self) -> usize;

    /// Number of check bytes per codeword.
    fn check_len(&self) -> usize;

    /// Computes the check bytes for `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.data_len()`.
    fn encode(&self, data: &[u8]) -> Vec<u8>;

    /// Verifies `data` against `check`, correcting `data` in place when the
    /// observed error is within the correction capability.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.data_len()` or
    /// `check.len() != self.check_len()`.
    fn decode(&self, data: &mut [u8], check: &[u8]) -> DecodeOutcome;

    /// Redundancy ratio of the code, `check_len / data_len`.
    fn redundancy(&self) -> f64 {
        self.check_len() as f64 / self.data_len() as f64
    }

    /// Human-readable code name, e.g. `"SEC-DED(72,64)"`.
    fn name(&self) -> String;
}

/// Asserts codec slice-length preconditions with a uniform message.
pub(crate) fn check_lengths(codec: &dyn Codec, data: &[u8], check: Option<&[u8]>) {
    assert_eq!(
        data.len(),
        codec.data_len(),
        "{}: data length {} != {}",
        codec.name(),
        data.len(),
        codec.data_len()
    );
    if let Some(check) = check {
        assert_eq!(
            check.len(),
            codec.check_len(),
            "{}: check length {} != {}",
            codec.name(),
            check.len(),
            codec.check_len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_usability() {
        assert!(DecodeOutcome::Clean.is_usable());
        assert!(DecodeOutcome::Corrected { flipped_bits: 1 }.is_usable());
        assert!(!DecodeOutcome::DetectedUncorrectable.is_usable());
        assert!(!DecodeOutcome::TagMismatch.is_usable());
    }

    #[test]
    fn outcome_display_nonempty() {
        for o in [
            DecodeOutcome::Clean,
            DecodeOutcome::Corrected { flipped_bits: 2 },
            DecodeOutcome::DetectedUncorrectable,
            DecodeOutcome::TagMismatch,
        ] {
            assert!(!o.to_string().is_empty());
        }
    }
}
