//! Inline-ECC memory layouts: where check bits live in DRAM.
//!
//! GDDR-based GPUs have no side-band ECC devices, so enabling protection
//! carves the redundancy out of the *same* DRAM ("inline ECC"). The layout
//! decides the cost of every protected access:
//!
//! * [`EccPlacement::ReservedRegion`] — the industry-default layout. All
//!   ECC atoms live in a reserved region at the top of the address space.
//!   An ECC fetch therefore targets a *different* DRAM row (often a
//!   different bank) than its data, causing row-buffer interference.
//! * [`EccPlacement::RowColocated`] — CacheCraft's **C1** mechanism: each
//!   DRAM row reserves its last few atoms for the ECC of that row's own
//!   data atoms, so an ECC fetch is almost always a row-buffer hit.
//!
//! All math is in units of 32-byte **atoms** (the DRAM access granularity
//! of modern GPUs). One ECC atom carries the check bytes of `coverage`
//! data atoms (`coverage = 8` ⇒ 4 check bytes per 32 B atom ⇒ 12.5 %
//! redundancy, the SEC-DED(72,64) budget).
//!
//! # Examples
//!
//! ```
//! use ccraft_ecc::layout::{EccPlacement, InlineLayout};
//!
//! // 1 GiB channel, 2 KiB rows (64 atoms), one ECC atom per 8 data atoms.
//! let layout = InlineLayout::new(EccPlacement::RowColocated { row_atoms: 64 }, 8, 1 << 25);
//! let phys = layout.logical_to_physical(0);
//! let ecc = layout.ecc_atom_for(phys);
//! // Co-location: the ECC atom is in the same 64-atom row as its data.
//! assert_eq!(phys / 64, ecc / 64);
//! ```

use std::fmt;

/// Size of one DRAM atom (minimum access granularity) in bytes.
pub const ATOM_BYTES: u64 = 32;

/// Placement policy for inline ECC atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EccPlacement {
    /// All ECC atoms in a reserved region at the top of physical memory
    /// (default firmware layout on inline-ECC GPUs).
    ReservedRegion,
    /// ECC atoms carved out of the tail of each DRAM row, co-located with
    /// the data they protect (`row_atoms` = atoms per DRAM row).
    RowColocated {
        /// Number of atoms per DRAM row (row size / 32 B).
        row_atoms: u32,
    },
}

impl fmt::Display for EccPlacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EccPlacement::ReservedRegion => write!(f, "reserved-region"),
            EccPlacement::RowColocated { row_atoms } => {
                write!(f, "row-colocated(row={row_atoms} atoms)")
            }
        }
    }
}

/// A concrete inline-ECC layout over a physical atom space.
///
/// Logical (software-visible) atom indices are dense `0..data_atoms()`;
/// physical atom indices are `0..total_atoms` and include ECC atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InlineLayout {
    placement: EccPlacement,
    /// Data atoms covered by one ECC atom.
    coverage: u32,
    /// Total physical atoms.
    total_atoms: u64,
    /// Derived: usable data atoms.
    data_atoms: u64,
    /// Derived (row-colocated): data atoms per row.
    row_data_atoms: u32,
    /// Derived (row-colocated): ecc atoms per row.
    row_ecc_atoms: u32,
}

impl InlineLayout {
    /// Builds a layout.
    ///
    /// # Panics
    ///
    /// Panics if `coverage` is zero or does not divide [`ATOM_BYTES`]
    /// evenly into whole check bytes, if `total_atoms` is too small to hold
    /// one coverage group, or (row-colocated) if `row_atoms` is zero or
    /// `total_atoms` is not a whole number of rows.
    pub fn new(placement: EccPlacement, coverage: u32, total_atoms: u64) -> Self {
        assert!(coverage > 0, "coverage must be positive");
        assert_eq!(
            ATOM_BYTES % coverage as u64,
            0,
            "coverage {coverage} must divide the {ATOM_BYTES}-byte atom into whole check bytes"
        );
        let (data_atoms, row_data_atoms, row_ecc_atoms) = match placement {
            EccPlacement::ReservedRegion => {
                // D data atoms + ceil(D / coverage) ecc atoms <= total.
                // Solve by shrinking from the ideal ratio.
                let mut d = total_atoms * coverage as u64 / (coverage as u64 + 1);
                while d + d.div_ceil(coverage as u64) > total_atoms {
                    d -= 1;
                }
                assert!(d > 0, "memory too small for one coverage group");
                (d, 0, 0)
            }
            EccPlacement::RowColocated { row_atoms } => {
                assert!(row_atoms > 0, "row_atoms must be positive");
                assert_eq!(
                    total_atoms % row_atoms as u64,
                    0,
                    "total_atoms must be a whole number of rows"
                );
                let e = (row_atoms as u64).div_ceil(coverage as u64 + 1) as u32;
                let d = row_atoms - e;
                assert!(
                    d as u64 <= e as u64 * coverage as u64,
                    "row carve-out insufficient: {d} data atoms, {e} ecc atoms x{coverage}"
                );
                assert!(d > 0, "row too small for any data atoms");
                let rows = total_atoms / row_atoms as u64;
                (rows * d as u64, d, e)
            }
        };
        InlineLayout {
            placement,
            coverage,
            total_atoms,
            data_atoms,
            row_data_atoms,
            row_ecc_atoms,
        }
    }

    /// An unprotected layout helper: identity mapping, no ECC atoms.
    /// Useful so callers can treat ECC-off uniformly.
    pub fn unprotected(total_atoms: u64) -> Self {
        InlineLayout {
            placement: EccPlacement::ReservedRegion,
            coverage: 0,
            total_atoms,
            data_atoms: total_atoms,
            row_data_atoms: 0,
            row_ecc_atoms: 0,
        }
    }

    /// `true` if this layout carries no ECC (built via
    /// [`unprotected`](Self::unprotected)).
    pub fn is_unprotected(&self) -> bool {
        self.coverage == 0
    }

    /// The placement policy.
    pub fn placement(&self) -> EccPlacement {
        self.placement
    }

    /// Data atoms covered per ECC atom (0 when unprotected).
    pub fn coverage(&self) -> u32 {
        self.coverage
    }

    /// Check bytes stored per data atom.
    pub fn check_bytes_per_atom(&self) -> u64 {
        if self.coverage == 0 {
            0
        } else {
            ATOM_BYTES / self.coverage as u64
        }
    }

    /// Usable (software-visible) data atoms.
    pub fn data_atoms(&self) -> u64 {
        self.data_atoms
    }

    /// Total physical atoms including ECC.
    pub fn total_atoms(&self) -> u64 {
        self.total_atoms
    }

    /// Fraction of physical capacity available to data.
    pub fn data_capacity_fraction(&self) -> f64 {
        self.data_atoms as f64 / self.total_atoms as f64
    }

    /// Maps a dense logical data-atom index to its physical atom index.
    ///
    /// # Panics
    ///
    /// Panics if `logical >= self.data_atoms()`.
    pub fn logical_to_physical(&self, logical: u64) -> u64 {
        assert!(
            logical < self.data_atoms,
            "logical atom {logical} out of bounds ({})",
            self.data_atoms
        );
        match self.placement {
            _ if self.coverage == 0 => logical,
            EccPlacement::ReservedRegion => logical,
            EccPlacement::RowColocated { row_atoms } => {
                let row = logical / self.row_data_atoms as u64;
                let offset = logical % self.row_data_atoms as u64;
                row * row_atoms as u64 + offset
            }
        }
    }

    /// Maps a physical data-atom index back to its logical index.
    ///
    /// Returns `None` when `physical` addresses an ECC atom or lies outside
    /// the populated range.
    pub fn physical_to_logical(&self, physical: u64) -> Option<u64> {
        if physical >= self.total_atoms {
            return None;
        }
        match self.placement {
            _ if self.coverage == 0 => Some(physical),
            EccPlacement::ReservedRegion => {
                if physical < self.data_atoms {
                    Some(physical)
                } else {
                    None
                }
            }
            EccPlacement::RowColocated { row_atoms } => {
                let row = physical / row_atoms as u64;
                let offset = physical % row_atoms as u64;
                if offset < self.row_data_atoms as u64 {
                    let logical = row * self.row_data_atoms as u64 + offset;
                    (logical < self.data_atoms).then_some(logical)
                } else {
                    None
                }
            }
        }
    }

    /// `true` if the physical atom holds ECC rather than data.
    pub fn is_ecc_atom(&self, physical: u64) -> bool {
        if self.coverage == 0 || physical >= self.total_atoms {
            return false;
        }
        match self.placement {
            EccPlacement::ReservedRegion => physical >= self.data_atoms,
            EccPlacement::RowColocated { row_atoms } => {
                physical % row_atoms as u64 >= self.row_data_atoms as u64
            }
        }
    }

    /// Physical index of the ECC atom protecting the given physical
    /// *data* atom.
    ///
    /// # Panics
    ///
    /// Panics when unprotected or when `data_physical` is an ECC atom or
    /// out of range.
    // Documented invariant panic (see `# Panics`): passing an ECC atom
    // here is a caller bug, not a recoverable condition.
    #[allow(clippy::expect_used)]
    pub fn ecc_atom_for(&self, data_physical: u64) -> u64 {
        assert!(self.coverage != 0, "layout is unprotected");
        let logical = self
            .physical_to_logical(data_physical)
            .expect("not a data atom");
        match self.placement {
            EccPlacement::ReservedRegion => self.data_atoms + logical / self.coverage as u64,
            EccPlacement::RowColocated { row_atoms } => {
                let row = data_physical / row_atoms as u64;
                let offset = data_physical % row_atoms as u64;
                let group = offset / self.coverage as u64;
                debug_assert!(group < self.row_ecc_atoms as u64);
                row * row_atoms as u64 + self.row_data_atoms as u64 + group
            }
        }
    }

    /// Byte range of the check bytes for `data_physical` *within* its ECC
    /// atom: `(offset, len)` with `offset + len <= 32`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`ecc_atom_for`](Self::ecc_atom_for).
    // Documented invariant panic, same conditions as `ecc_atom_for`.
    #[allow(clippy::expect_used)]
    pub fn check_bytes_in_ecc_atom(&self, data_physical: u64) -> (u64, u64) {
        assert!(self.coverage != 0, "layout is unprotected");
        let len = self.check_bytes_per_atom();
        let slot = match self.placement {
            EccPlacement::ReservedRegion => {
                let logical = self
                    .physical_to_logical(data_physical)
                    .expect("not a data atom");
                logical % self.coverage as u64
            }
            EccPlacement::RowColocated { row_atoms } => {
                let offset = data_physical % row_atoms as u64;
                debug_assert!(offset < self.row_data_atoms as u64, "not a data atom");
                offset % self.coverage as u64
            }
        };
        (slot * len, len)
    }

    /// The physical data atoms covered by the given physical ECC atom, as
    /// `(first_data_atom, count)`. The covered atoms are contiguous in
    /// physical space in both placements.
    ///
    /// # Panics
    ///
    /// Panics if `ecc_physical` is not an ECC atom.
    pub fn covered_data_atoms(&self, ecc_physical: u64) -> (u64, u64) {
        assert!(
            self.is_ecc_atom(ecc_physical),
            "{ecc_physical} is not an ECC atom"
        );
        match self.placement {
            EccPlacement::ReservedRegion => {
                let group = ecc_physical - self.data_atoms;
                let first = group * self.coverage as u64;
                let count = self.coverage as u64 * (group + 1);
                let count = count.min(self.data_atoms) - first;
                (first, count)
            }
            EccPlacement::RowColocated { row_atoms } => {
                let row = ecc_physical / row_atoms as u64;
                let group = ecc_physical % row_atoms as u64 - self.row_data_atoms as u64;
                let first_off = group * self.coverage as u64;
                let count = (self.coverage as u64)
                    .min(self.row_data_atoms as u64 - first_off.min(self.row_data_atoms as u64));
                (row * row_atoms as u64 + first_off, count)
            }
        }
    }

    /// Data atoms per row and ECC atoms per row (row-colocated layouts
    /// only; `(0, 0)` otherwise).
    pub fn row_split(&self) -> (u32, u32) {
        (self.row_data_atoms, self.row_ecc_atoms)
    }
}

impl fmt::Display for InlineLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unprotected() {
            write!(f, "unprotected({} atoms)", self.total_atoms)
        } else {
            write!(
                f,
                "{} x1:{} over {} atoms ({:.1}% usable)",
                self.placement,
                self.coverage,
                self.total_atoms,
                100.0 * self.data_capacity_fraction()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB_ATOMS: u64 = 1 << 15; // 1 MiB of 32 B atoms

    #[test]
    fn reserved_region_capacity_split() {
        let l = InlineLayout::new(EccPlacement::ReservedRegion, 8, MIB_ATOMS);
        let d = l.data_atoms();
        assert!(d + d.div_ceil(8) <= MIB_ATOMS);
        // Within one atom of the ideal 8/9 split.
        assert!((d as f64 - MIB_ATOMS as f64 * 8.0 / 9.0).abs() < 2.0);
    }

    #[test]
    fn reserved_region_mapping_is_identity_for_data() {
        let l = InlineLayout::new(EccPlacement::ReservedRegion, 8, MIB_ATOMS);
        for logical in [0u64, 1, 7, 8, 1000, l.data_atoms() - 1] {
            assert_eq!(l.logical_to_physical(logical), logical);
            assert_eq!(l.physical_to_logical(logical), Some(logical));
        }
    }

    #[test]
    fn reserved_region_ecc_atoms_at_top() {
        let l = InlineLayout::new(EccPlacement::ReservedRegion, 8, MIB_ATOMS);
        let d = l.data_atoms();
        assert!(!l.is_ecc_atom(0));
        assert!(!l.is_ecc_atom(d - 1));
        assert!(l.is_ecc_atom(d));
        assert_eq!(l.ecc_atom_for(0), d);
        assert_eq!(l.ecc_atom_for(7), d);
        assert_eq!(l.ecc_atom_for(8), d + 1);
    }

    #[test]
    fn row_colocated_split() {
        // 64-atom (2 KiB) rows, coverage 8 → 8 ECC atoms, 56 data atoms.
        let l = InlineLayout::new(EccPlacement::RowColocated { row_atoms: 64 }, 8, MIB_ATOMS);
        assert_eq!(l.row_split(), (56, 8));
        assert_eq!(l.data_atoms(), MIB_ATOMS / 64 * 56);
    }

    #[test]
    fn row_colocated_ecc_in_same_row() {
        let l = InlineLayout::new(EccPlacement::RowColocated { row_atoms: 64 }, 8, MIB_ATOMS);
        for logical in [0u64, 1, 55, 56, 100, 1000, l.data_atoms() - 1] {
            let phys = l.logical_to_physical(logical);
            let ecc = l.ecc_atom_for(phys);
            assert_eq!(phys / 64, ecc / 64, "logical {logical}: ECC in another row");
            assert!(l.is_ecc_atom(ecc));
            assert!(!l.is_ecc_atom(phys));
        }
    }

    #[test]
    fn logical_physical_round_trip() {
        for placement in [
            EccPlacement::ReservedRegion,
            EccPlacement::RowColocated { row_atoms: 64 },
        ] {
            for coverage in [8u32, 16, 32] {
                let l = InlineLayout::new(placement, coverage, MIB_ATOMS);
                for logical in (0..l.data_atoms()).step_by(997) {
                    let phys = l.logical_to_physical(logical);
                    assert_eq!(
                        l.physical_to_logical(phys),
                        Some(logical),
                        "{placement:?} x{coverage} logical {logical}"
                    );
                    assert!(!l.is_ecc_atom(phys));
                }
            }
        }
    }

    #[test]
    fn check_byte_slots_tile_the_ecc_atom() {
        let l = InlineLayout::new(EccPlacement::RowColocated { row_atoms: 64 }, 8, MIB_ATOMS);
        // The 8 data atoms of one group use disjoint 4-byte slots.
        let mut seen = [false; 8];
        for logical in 0..8u64 {
            let phys = l.logical_to_physical(logical);
            let (off, len) = l.check_bytes_in_ecc_atom(phys);
            assert_eq!(len, 4);
            assert_eq!(off % 4, 0);
            let slot = (off / 4) as usize;
            assert!(!seen[slot], "slot {slot} reused");
            seen[slot] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn covered_data_atoms_inverts_ecc_atom_for() {
        for placement in [
            EccPlacement::ReservedRegion,
            EccPlacement::RowColocated { row_atoms: 64 },
        ] {
            let l = InlineLayout::new(placement, 8, MIB_ATOMS);
            for logical in (0..l.data_atoms()).step_by(131) {
                let phys = l.logical_to_physical(logical);
                let ecc = l.ecc_atom_for(phys);
                let (first, count) = l.covered_data_atoms(ecc);
                assert!(
                    (first..first + count).contains(&phys),
                    "{placement:?}: atom {phys} not covered by its own ECC atom"
                );
                // Every covered atom maps back to this ECC atom.
                for covered in first..first + count {
                    assert_eq!(l.ecc_atom_for(covered), ecc);
                }
            }
        }
    }

    #[test]
    fn unprotected_layout() {
        let l = InlineLayout::unprotected(MIB_ATOMS);
        assert!(l.is_unprotected());
        assert_eq!(l.data_atoms(), MIB_ATOMS);
        assert_eq!(l.logical_to_physical(42), 42);
        assert!(!l.is_ecc_atom(42));
        assert_eq!(l.check_bytes_per_atom(), 0);
        assert!((l.data_capacity_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_fraction_by_coverage() {
        for (coverage, min_frac) in [(8u32, 0.85), (16, 0.92), (32, 0.96)] {
            let l = InlineLayout::new(EccPlacement::ReservedRegion, coverage, MIB_ATOMS);
            assert!(
                l.data_capacity_fraction() > min_frac,
                "x{coverage}: {}",
                l.data_capacity_fraction()
            );
        }
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn rejects_partial_rows() {
        let _ = InlineLayout::new(
            EccPlacement::RowColocated { row_atoms: 64 },
            8,
            MIB_ATOMS + 1,
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_oob_logical() {
        let l = InlineLayout::new(EccPlacement::ReservedRegion, 8, MIB_ATOMS);
        let _ = l.logical_to_physical(l.data_atoms());
    }

    #[test]
    fn display_is_informative() {
        let l = InlineLayout::new(EccPlacement::RowColocated { row_atoms: 64 }, 8, MIB_ATOMS);
        let s = l.to_string();
        assert!(s.contains("row-colocated"));
        assert!(s.contains("1:8"));
    }
}
