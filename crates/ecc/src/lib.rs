//! # ccraft-ecc — ECC codecs and inline-ECC layouts
//!
//! The error-coding substrate of the CacheCraft reproduction: everything
//! needed to *protect* memory (codecs) and to decide *where the redundancy
//! lives* in DRAM (layouts), plus fault-injection models for reliability
//! campaigns.
//!
//! ## Modules
//!
//! * [`gf256`] — GF(2^8) field arithmetic (table-driven).
//! * [`code`] — the [`Codec`] trait and [`DecodeOutcome`].
//! * [`secded`] — extended-Hamming SEC-DED codes, including the canonical
//!   (72,64) memory configuration.
//! * [`rs`] — Reed–Solomon symbol codes (chipkill-class protection) with a
//!   full Berlekamp–Massey / Chien / Forney decoder.
//! * [`crc`] — detection-only CRC codecs.
//! * [`tagged`] — alias-free implicit memory tagging on top of SEC-DED.
//! * [`layout`] — inline-ECC placement math: reserved-region vs
//!   row-colocated ECC atoms (CacheCraft mechanism **C1**).
//! * [`inject`] — bit/burst/symbol/chip-lane error models.
//!
//! ## Quick start
//!
//! ```
//! use ccraft_ecc::code::{Codec, DecodeOutcome};
//! use ccraft_ecc::secded::SecDed64;
//! use ccraft_ecc::layout::{EccPlacement, InlineLayout};
//!
//! // Protect one 8-byte word.
//! let codec = SecDed64::new();
//! let mut word = *b"CacheCr!";
//! let check = codec.encode(&word);
//! word[0] ^= 0x04;
//! assert!(codec.decode(&mut word, &check).is_usable());
//!
//! // Decide where its check bits live in a 1 GiB inline-ECC channel.
//! let layout = InlineLayout::new(EccPlacement::RowColocated { row_atoms: 64 }, 8, 1 << 25);
//! let ecc_atom = layout.ecc_atom_for(layout.logical_to_physical(0));
//! assert!(layout.is_ecc_atom(ecc_atom));
//! ```
// Library crates must not abort the process on recoverable conditions:
// panicking escapes are denied outside tests, and the few justified
// invariant panics carry scoped `#[allow]`s with a safety comment.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod code;
pub mod crc;
pub mod gf256;
pub mod inject;
pub mod layout;
pub mod rs;
pub mod secded;
pub mod tagged;

pub use code::{Codec, DecodeOutcome};
pub use layout::{EccPlacement, InlineLayout, ATOM_BYTES};
