//! Cyclic redundancy checks (detection-only codecs).
//!
//! CRCs detect but never correct. In a memory-protection stack they appear
//! as cheap end-to-end integrity checks (e.g. on links or compressed
//! payloads) and as the detection tier backing retry-based recovery. The
//! [`Crc`] type is table-driven and parameterized by width/polynomial;
//! standard configurations are provided as constructors.
//!
//! # Examples
//!
//! ```
//! use ccraft_ecc::crc::Crc;
//!
//! let crc = Crc::crc32();
//! // The CRC-32 check value ("123456789" → 0xCBF43926) pins the config.
//! assert_eq!(crc.checksum(b"123456789"), 0xCBF43926);
//! ```

use crate::code::{Codec, DecodeOutcome};

/// A table-driven CRC with up to 32-bit width.
///
/// The configuration follows the Rocksoft model: polynomial, initial value,
/// reflect-in/out, and final XOR.
#[derive(Debug, Clone)]
pub struct Crc {
    name: &'static str,
    width: u32,
    init: u32,
    xorout: u32,
    reflect: bool,
    table: Box<[u32; 256]>,
    /// Number of data bytes per codeword when used as a [`Codec`].
    block_len: usize,
}

impl Crc {
    /// Builds a CRC from raw parameters.
    ///
    /// Only *reflected* and *normal* algorithms with matching in/out
    /// reflection are supported (covers all common standards).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 32.
    pub fn with_params(
        name: &'static str,
        width: u32,
        poly: u32,
        init: u32,
        xorout: u32,
        reflect: bool,
        block_len: usize,
    ) -> Self {
        assert!((1..=32).contains(&width), "CRC width must be 1..=32");
        let mask = Self::mask(width);
        let mut table = Box::new([0u32; 256]);
        if reflect {
            let poly_r = reflect_bits(poly & mask, width);
            for (i, entry) in table.iter_mut().enumerate() {
                let mut crc = i as u32;
                for _ in 0..8 {
                    crc = if crc & 1 != 0 {
                        (crc >> 1) ^ poly_r
                    } else {
                        crc >> 1
                    };
                }
                *entry = crc;
            }
        } else {
            for (i, entry) in table.iter_mut().enumerate() {
                // For width < 8 the byte is folded at the top of an 8-bit
                // register and the result shifted back down.
                if width < 8 {
                    let mut reg = (i as u32) << (8 - width) >> (8 - width) << (8u32 - width);
                    let top = 1u32 << 7;
                    let poly_shift = poly << (8 - width);
                    for _ in 0..8 {
                        reg = if reg & top != 0 {
                            (reg << 1) ^ poly_shift
                        } else {
                            reg << 1
                        };
                    }
                    *entry = (reg >> (8 - width)) & mask;
                    continue;
                }
                let mut crc = (i as u32) << (width - 8);
                let top = 1u32 << (width - 1);
                for _ in 0..8 {
                    crc = if crc & top != 0 {
                        (crc << 1) ^ poly
                    } else {
                        crc << 1
                    };
                }
                *entry = crc & mask;
            }
        }
        Crc {
            name,
            width,
            init,
            xorout,
            reflect,
            table,
            block_len,
        }
    }

    /// CRC-32 (IEEE 802.3, reflected), protecting 32-byte blocks by default.
    pub fn crc32() -> Self {
        Self::with_params(
            "CRC-32",
            32,
            0x04C1_1DB7,
            0xFFFF_FFFF,
            0xFFFF_FFFF,
            true,
            32,
        )
    }

    /// CRC-16/CCITT-FALSE (normal), protecting 32-byte blocks by default.
    pub fn crc16_ccitt() -> Self {
        Self::with_params("CRC-16/CCITT", 16, 0x1021, 0xFFFF, 0x0000, false, 32)
    }

    /// CRC-8 (SMBus/ATM, poly 0x07, normal), protecting 8-byte blocks.
    pub fn crc8() -> Self {
        Self::with_params("CRC-8", 8, 0x07, 0x00, 0x00, false, 8)
    }

    /// Returns the same CRC configured for a different block length when
    /// used through the [`Codec`] interface.
    pub fn with_block_len(mut self, block_len: usize) -> Self {
        assert!(block_len > 0, "block length must be positive");
        self.block_len = block_len;
        self
    }

    fn mask(width: u32) -> u32 {
        if width == 32 {
            u32::MAX
        } else {
            (1u32 << width) - 1
        }
    }

    /// Computes the check value of `bytes`.
    pub fn checksum(&self, bytes: &[u8]) -> u32 {
        let mask = Self::mask(self.width);
        if self.reflect {
            let mut crc = reflect_bits(self.init & mask, self.width);
            for &b in bytes {
                crc = (crc >> 8) ^ self.table[((crc ^ b as u32) & 0xFF) as usize];
            }
            (crc ^ self.xorout) & mask
        } else if self.width >= 8 {
            let mut crc = self.init & mask;
            for &b in bytes {
                let idx = ((crc >> (self.width - 8)) ^ b as u32) & 0xFF;
                crc = ((crc << 8) ^ self.table[idx as usize]) & mask;
            }
            (crc ^ self.xorout) & mask
        } else {
            // Narrow CRC: bitwise.
            let mut crc = self.init & mask;
            let top = 1u32 << (self.width - 1);
            for &b in bytes {
                for i in (0..8).rev() {
                    let inbit = (b >> i) & 1 != 0;
                    let topbit = crc & top != 0;
                    crc = (crc << 1) & mask;
                    if inbit != topbit {
                        crc ^= 0x07 & mask; // only crc8 path reaches here
                    }
                }
            }
            (crc ^ self.xorout) & mask
        }
    }

    /// Check length in bytes.
    fn check_bytes(&self) -> usize {
        (self.width as usize).div_ceil(8)
    }
}

fn reflect_bits(value: u32, width: u32) -> u32 {
    let mut out = 0u32;
    for i in 0..width {
        if value >> i & 1 != 0 {
            out |= 1 << (width - 1 - i);
        }
    }
    out
}

impl Codec for Crc {
    fn data_len(&self) -> usize {
        self.block_len
    }

    fn check_len(&self) -> usize {
        self.check_bytes()
    }

    fn encode(&self, data: &[u8]) -> Vec<u8> {
        crate::code::check_lengths(self, data, None);
        let sum = self.checksum(data);
        (0..self.check_bytes())
            .map(|i| (sum >> (8 * i)) as u8)
            .collect()
    }

    fn decode(&self, data: &mut [u8], check: &[u8]) -> DecodeOutcome {
        crate::code::check_lengths(self, data, Some(check));
        let expect = self.encode(data);
        if expect == check {
            DecodeOutcome::Clean
        } else {
            DecodeOutcome::DetectedUncorrectable
        }
    }

    fn name(&self) -> String {
        self.name.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_check_value() {
        assert_eq!(Crc::crc32().checksum(b"123456789"), 0xCBF43926);
    }

    #[test]
    fn crc16_ccitt_check_value() {
        assert_eq!(Crc::crc16_ccitt().checksum(b"123456789"), 0x29B1);
    }

    #[test]
    fn crc8_check_value() {
        assert_eq!(Crc::crc8().checksum(b"123456789"), 0xF4);
    }

    #[test]
    fn codec_detects_any_single_bit_flip() {
        let crc = Crc::crc32();
        let data: Vec<u8> = (0..32).collect();
        let check = crc.encode(&data);
        for byte in 0..32 {
            for bit in 0..8 {
                let mut bad = data.clone();
                bad[byte] ^= 1 << bit;
                assert_eq!(
                    crc.decode(&mut bad, &check),
                    DecodeOutcome::DetectedUncorrectable
                );
            }
        }
        let mut clean = data.clone();
        assert_eq!(crc.decode(&mut clean, &check), DecodeOutcome::Clean);
    }

    #[test]
    fn codec_detects_burst_errors() {
        let crc = Crc::crc16_ccitt();
        let data: Vec<u8> = (0..32).map(|i| i * 3).collect();
        let check = crc.encode(&data);
        // All bursts up to 16 bits are guaranteed caught by CRC-16.
        for start in 0..31 {
            let mut bad = data.clone();
            bad[start] ^= 0xFF;
            bad[start + 1] ^= 0xFF;
            assert_eq!(
                crc.decode(&mut bad, &check),
                DecodeOutcome::DetectedUncorrectable
            );
        }
    }

    #[test]
    fn block_len_override() {
        let crc = Crc::crc32().with_block_len(128);
        assert_eq!(crc.data_len(), 128);
        let data = vec![0xA5u8; 128];
        let check = crc.encode(&data);
        let mut same = data.clone();
        assert_eq!(crc.decode(&mut same, &check), DecodeOutcome::Clean);
    }

    #[test]
    fn reflect_helper() {
        assert_eq!(reflect_bits(0b0000_0001, 8), 0b1000_0000);
        assert_eq!(reflect_bits(0x04C1_1DB7, 32), 0xEDB8_8320);
    }
}
