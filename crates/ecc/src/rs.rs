//! Reed–Solomon codes over GF(2^8).
//!
//! Symbol-oriented codes are the standard tool for chipkill-class memory
//! protection: one 8-bit symbol maps onto the bits contributed by one DRAM
//! device (or pin group), so correcting `t` symbols tolerates `t` whole-chip
//! failures regardless of how many bits within the symbol are wrong.
//!
//! [`ReedSolomon`] implements a systematic RS(n, k) encoder and a full
//! hard-decision decoder (Berlekamp–Massey → Chien search → Forney
//! algorithm) correcting up to `t = (n - k) / 2` symbol errors and detecting
//! most heavier patterns.
//!
//! # Examples
//!
//! ```
//! use ccraft_ecc::code::{Codec, DecodeOutcome};
//! use ccraft_ecc::rs::ReedSolomon;
//!
//! // RS(36,32): 32 data symbols + 4 check symbols, corrects 2 symbol errors.
//! let rs = ReedSolomon::new(36, 32).unwrap();
//! let mut data: Vec<u8> = (0..32).collect();
//! let check = rs.encode(&data);
//! data[5] = 0xFF;  // a whole-symbol (chip) error
//! data[17] ^= 0x08; // and an unrelated bit error
//! assert!(matches!(rs.decode(&mut data, &check), DecodeOutcome::Corrected { .. }));
//! assert_eq!(data, (0..32).collect::<Vec<u8>>());
//! ```

use crate::code::{check_lengths, Codec, DecodeOutcome};
use crate::gf256::{poly_eval, Gf256, GROUP_ORDER};
use std::fmt;

/// Error constructing a [`ReedSolomon`] code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildCodeError {
    /// `n` must not exceed 255 (the GF(2^8) block-length limit).
    BlockTooLong,
    /// `k` must satisfy `0 < k < n`.
    BadDimension,
    /// `n - k` must be even (this implementation does not expose
    /// erasure-assisted odd-redundancy decoding).
    OddRedundancy,
}

impl fmt::Display for BuildCodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildCodeError::BlockTooLong => write!(f, "block length exceeds 255 symbols"),
            BuildCodeError::BadDimension => write!(f, "dimension must satisfy 0 < k < n"),
            BuildCodeError::OddRedundancy => write!(f, "redundancy n - k must be even"),
        }
    }
}

impl std::error::Error for BuildCodeError {}

/// A systematic Reed–Solomon code RS(n, k) over GF(2^8).
///
/// Codeword layout: `k` data symbols followed by `n - k` check symbols,
/// i.e. `c(x) = d(x) * x^(n-k) + rem(d(x) * x^(n-k), g(x))` with generator
/// `g(x) = prod_{i=0}^{n-k-1} (x - alpha^i)`.
#[derive(Clone)]
pub struct ReedSolomon {
    n: usize,
    k: usize,
    /// Generator polynomial, highest degree first, monic, length `n-k+1`.
    generator: Vec<Gf256>,
}

impl ReedSolomon {
    /// Builds an RS(n, k) code.
    ///
    /// # Errors
    ///
    /// Returns an error when the parameters are outside the GF(2^8) limits
    /// or the redundancy is odd (see [`BuildCodeError`]).
    pub fn new(n: usize, k: usize) -> Result<Self, BuildCodeError> {
        if n > GROUP_ORDER {
            return Err(BuildCodeError::BlockTooLong);
        }
        if k == 0 || k >= n {
            return Err(BuildCodeError::BadDimension);
        }
        if !(n - k).is_multiple_of(2) {
            return Err(BuildCodeError::OddRedundancy);
        }
        let mut generator = vec![Gf256::ONE];
        for i in 0..(n - k) {
            // Multiply by (x - alpha^i) == (x + alpha^i).
            let root = Gf256::alpha_pow(i as i32);
            let mut next = vec![Gf256::ZERO; generator.len() + 1];
            for (j, &g) in generator.iter().enumerate() {
                next[j] += g; // g * x
                next[j + 1] += g * root; // g * alpha^i
            }
            generator = next;
        }
        Ok(ReedSolomon { n, k, generator })
    }

    /// Number of correctable symbol errors, `t = (n - k) / 2`.
    pub fn t(&self) -> usize {
        (self.n - self.k) / 2
    }

    /// Block length `n` in symbols.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Dimension `k` in symbols.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Computes the `n - k` check symbols for a `k`-symbol message by
    /// polynomial long division.
    fn parity(&self, data: &[u8]) -> Vec<Gf256> {
        let r = self.n - self.k;
        // Remainder register, highest degree first.
        let mut rem = vec![Gf256::ZERO; r];
        for &d in data {
            let factor = Gf256::new(d) + rem[0];
            rem.rotate_left(1);
            rem[r - 1] = Gf256::ZERO;
            if !factor.is_zero() {
                // generator[0] is 1 (monic); skip it.
                for (i, &g) in self.generator[1..].iter().enumerate() {
                    rem[i] += factor * g;
                }
            }
        }
        rem
    }

    /// Computes the 2t syndromes of a full codeword (data ++ check).
    /// `codeword[0]` is the highest-degree coefficient.
    fn syndromes(&self, codeword: &[Gf256]) -> Vec<Gf256> {
        (0..(self.n - self.k))
            .map(|i| poly_eval(codeword, Gf256::alpha_pow(i as i32)))
            .collect()
    }

    /// Berlekamp–Massey: returns the error-locator polynomial
    /// `sigma(x)`, lowest degree first (`sigma[0] == 1`).
    fn berlekamp_massey(syndromes: &[Gf256]) -> Vec<Gf256> {
        let mut sigma = vec![Gf256::ONE];
        let mut prev = vec![Gf256::ONE];
        let mut l = 0usize;
        let mut m = 1usize;
        let mut b = Gf256::ONE;
        for i in 0..syndromes.len() {
            // Discrepancy.
            let mut delta = syndromes[i];
            for j in 1..=l {
                if j < sigma.len() {
                    delta += sigma[j] * syndromes[i - j];
                }
            }
            if delta.is_zero() {
                m += 1;
            } else if 2 * l <= i {
                let temp = sigma.clone();
                let scale = delta / b;
                // sigma -= scale * x^m * prev
                if sigma.len() < prev.len() + m {
                    sigma.resize(prev.len() + m, Gf256::ZERO);
                }
                for (j, &p) in prev.iter().enumerate() {
                    sigma[j + m] += scale * p;
                }
                l = i + 1 - l;
                prev = temp;
                b = delta;
                m = 1;
            } else {
                let scale = delta / b;
                if sigma.len() < prev.len() + m {
                    sigma.resize(prev.len() + m, Gf256::ZERO);
                }
                for (j, &p) in prev.iter().enumerate() {
                    sigma[j + m] += scale * p;
                }
                m += 1;
            }
        }
        // Trim trailing zeros.
        while sigma.len() > 1 && sigma.last() == Some(&Gf256::ZERO) {
            sigma.pop();
        }
        sigma
    }

    /// Chien search: positions `p` (0 = first transmitted symbol) where
    /// `sigma(alpha^{-p_fromend}) == 0`.
    fn chien_search(&self, sigma: &[Gf256]) -> Vec<usize> {
        let mut positions = Vec::new();
        for pos in 0..self.n {
            // Position `pos` (from the front) corresponds to degree
            // n-1-pos, i.e. locator X = alpha^(n-1-pos). A root of sigma at
            // X^{-1} marks an error there.
            let x_inv = Gf256::alpha_pow(-((self.n - 1 - pos) as i32));
            // Evaluate sigma (lowest degree first) at x_inv.
            let mut acc = Gf256::ZERO;
            for &c in sigma.iter().rev() {
                acc = acc * x_inv + c;
            }
            if acc.is_zero() {
                positions.push(pos);
            }
        }
        positions
    }

    /// Forney algorithm: error magnitudes for the found positions.
    // Invariant: locators are alpha^k with k in range, hence nonzero and
    // invertible; a zero locator would mean Chien search returned a
    // position outside the codeword.
    #[allow(clippy::expect_used)]
    fn forney(&self, syndromes: &[Gf256], sigma: &[Gf256], positions: &[usize]) -> Vec<Gf256> {
        // Error evaluator omega(x) = [S(x) * sigma(x)] mod x^(2t),
        // with S(x) = sum S_i x^i (lowest degree first).
        let two_t = syndromes.len();
        let mut omega = vec![Gf256::ZERO; two_t];
        for (i, &s) in syndromes.iter().enumerate() {
            for (j, &c) in sigma.iter().enumerate() {
                if i + j < two_t {
                    omega[i + j] += s * c;
                }
            }
        }
        // Formal derivative of sigma: sigma'(x) keeps odd-power terms.
        let mut dsigma = vec![Gf256::ZERO; sigma.len().saturating_sub(1).max(1)];
        for (j, &c) in sigma.iter().enumerate().skip(1) {
            if j % 2 == 1 {
                dsigma[j - 1] = c; // d/dx of c*x^j = j*c*x^{j-1}; j odd → coefficient c
            }
        }
        positions
            .iter()
            .map(|&pos| {
                let x = Gf256::alpha_pow((self.n - 1 - pos) as i32);
                let x_inv = x.inverse().expect("nonzero locator");
                let mut num = Gf256::ZERO;
                for &c in omega.iter().rev() {
                    num = num * x_inv + c;
                }
                let mut den = Gf256::ZERO;
                for &c in dsigma.iter().rev() {
                    den = den * x_inv + c;
                }
                if den.is_zero() {
                    // Degenerate: signal by returning zero magnitude, the
                    // caller re-checks syndromes and reports DUE.
                    Gf256::ZERO
                } else {
                    // fcr = 0 → magnitude = X^1 * omega(X^-1) / sigma'(X^-1).
                    x * (num / den)
                }
            })
            .collect()
    }
}

impl fmt::Debug for ReedSolomon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReedSolomon")
            .field("n", &self.n)
            .field("k", &self.k)
            .field("t", &self.t())
            .finish()
    }
}

impl Codec for ReedSolomon {
    fn data_len(&self) -> usize {
        self.k
    }

    fn check_len(&self) -> usize {
        self.n - self.k
    }

    fn encode(&self, data: &[u8]) -> Vec<u8> {
        check_lengths(self, data, None);
        self.parity(data).iter().map(|g| g.value()).collect()
    }

    fn decode(&self, data: &mut [u8], check: &[u8]) -> DecodeOutcome {
        check_lengths(self, data, Some(check));
        let codeword: Vec<Gf256> = data
            .iter()
            .chain(check.iter())
            .map(|&b| Gf256::new(b))
            .collect();
        let syndromes = self.syndromes(&codeword);
        if syndromes.iter().all(|s| s.is_zero()) {
            return DecodeOutcome::Clean;
        }
        let sigma = Self::berlekamp_massey(&syndromes);
        let num_errors = sigma.len() - 1;
        if num_errors == 0 || num_errors > self.t() {
            return DecodeOutcome::DetectedUncorrectable;
        }
        let positions = self.chien_search(&sigma);
        if positions.len() != num_errors {
            // Locator polynomial does not split over the field: > t errors.
            return DecodeOutcome::DetectedUncorrectable;
        }
        let magnitudes = self.forney(&syndromes, &sigma, &positions);
        let mut corrected = codeword;
        let mut flipped_bits = 0u32;
        for (&pos, &mag) in positions.iter().zip(magnitudes.iter()) {
            if mag.is_zero() {
                return DecodeOutcome::DetectedUncorrectable;
            }
            corrected[pos] += mag;
            if pos < self.k {
                flipped_bits += mag.value().count_ones();
            }
        }
        // Verify: re-run the syndrome check on the corrected word.
        if self.syndromes(&corrected).iter().any(|s| !s.is_zero()) {
            return DecodeOutcome::DetectedUncorrectable;
        }
        for (i, byte) in data.iter_mut().enumerate() {
            *byte = corrected[i].value();
        }
        DecodeOutcome::Corrected { flipped_bits }
    }

    fn name(&self) -> String {
        format!("RS({},{})", self.n, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(k: usize) -> Vec<u8> {
        (0..k)
            .map(|i| (i as u8).wrapping_mul(37).wrapping_add(11))
            .collect()
    }

    #[test]
    fn construction_limits() {
        assert!(ReedSolomon::new(255, 223).is_ok());
        assert_eq!(
            ReedSolomon::new(256, 200).unwrap_err(),
            BuildCodeError::BlockTooLong
        );
        assert_eq!(
            ReedSolomon::new(10, 0).unwrap_err(),
            BuildCodeError::BadDimension
        );
        assert_eq!(
            ReedSolomon::new(10, 10).unwrap_err(),
            BuildCodeError::BadDimension
        );
        assert_eq!(
            ReedSolomon::new(10, 7).unwrap_err(),
            BuildCodeError::OddRedundancy
        );
    }

    #[test]
    fn generator_roots_are_consecutive_alpha_powers() {
        let rs = ReedSolomon::new(36, 32).unwrap();
        for i in 0..4 {
            let root = Gf256::alpha_pow(i);
            assert!(
                poly_eval(&rs.generator, root).is_zero(),
                "alpha^{i} is not a root"
            );
        }
    }

    #[test]
    fn clean_round_trip() {
        for (n, k) in [(36, 32), (18, 16), (72, 64), (255, 223)] {
            let rs = ReedSolomon::new(n, k).unwrap();
            let mut data = sample_data(k);
            let check = rs.encode(&data);
            assert_eq!(check.len(), n - k);
            assert_eq!(rs.decode(&mut data, &check), DecodeOutcome::Clean);
            assert_eq!(data, sample_data(k));
        }
    }

    #[test]
    fn corrects_single_symbol_errors_everywhere() {
        let rs = ReedSolomon::new(36, 32).unwrap();
        let original = sample_data(32);
        let check = rs.encode(&original);
        for pos in 0..32 {
            for err in [0x01u8, 0x80, 0xFF, 0x5A] {
                let mut data = original.clone();
                data[pos] ^= err;
                let outcome = rs.decode(&mut data, &check);
                assert!(
                    matches!(outcome, DecodeOutcome::Corrected { .. }),
                    "pos {pos} err {err:#x}: {outcome:?}"
                );
                assert_eq!(data, original, "pos {pos} err {err:#x}");
            }
        }
    }

    #[test]
    fn corrects_check_symbol_errors() {
        let rs = ReedSolomon::new(36, 32).unwrap();
        let original = sample_data(32);
        let check = rs.encode(&original);
        for pos in 0..4 {
            let mut data = original.clone();
            let mut bad_check = check.clone();
            bad_check[pos] ^= 0xA5;
            let outcome = rs.decode(&mut data, &bad_check);
            assert_eq!(outcome, DecodeOutcome::Corrected { flipped_bits: 0 });
            assert_eq!(data, original);
        }
    }

    #[test]
    fn corrects_double_symbol_errors_with_t2() {
        let rs = ReedSolomon::new(36, 32).unwrap();
        let original = sample_data(32);
        let check = rs.encode(&original);
        for (p1, p2) in [(0usize, 31usize), (3, 4), (10, 20), (0, 1), (30, 31)] {
            let mut data = original.clone();
            data[p1] ^= 0xFF;
            data[p2] ^= 0x42;
            let outcome = rs.decode(&mut data, &check);
            assert!(
                matches!(outcome, DecodeOutcome::Corrected { .. }),
                "({p1},{p2}): {outcome:?}"
            );
            assert_eq!(data, original, "({p1},{p2})");
        }
    }

    #[test]
    fn detects_most_triple_symbol_errors_with_t2() {
        let rs = ReedSolomon::new(36, 32).unwrap();
        let original = sample_data(32);
        let check = rs.encode(&original);
        let mut detected = 0;
        let mut sdc = 0;
        let cases: Vec<(usize, usize, usize)> = (0..24).map(|i| (i, i + 4, i + 8)).collect();
        for &(p1, p2, p3) in &cases {
            let mut data = original.clone();
            data[p1] ^= 0x11;
            data[p2] ^= 0x22;
            data[p3] ^= 0x33;
            match rs.decode(&mut data, &check) {
                DecodeOutcome::DetectedUncorrectable => detected += 1,
                _ => {
                    if data != original {
                        sdc += 1;
                    }
                }
            }
        }
        // A t=2 code can mis-correct some 3-symbol patterns; the vast
        // majority of this structured set must be detected.
        assert!(
            detected >= cases.len() * 9 / 10,
            "only {detected}/{} detected ({sdc} SDC)",
            cases.len()
        );
    }

    #[test]
    fn t1_code_corrects_one_detects_structured_two() {
        let rs = ReedSolomon::new(18, 16).unwrap();
        let original = sample_data(16);
        let check = rs.encode(&original);
        let mut data = original.clone();
        data[7] = !data[7];
        assert!(matches!(
            rs.decode(&mut data, &check),
            DecodeOutcome::Corrected { .. }
        ));
        assert_eq!(data, original);
    }

    #[test]
    fn flipped_bits_accounting() {
        let rs = ReedSolomon::new(36, 32).unwrap();
        let original = sample_data(32);
        let check = rs.encode(&original);
        let mut data = original.clone();
        data[0] ^= 0b0000_0111; // 3 bits
        match rs.decode(&mut data, &check) {
            DecodeOutcome::Corrected { flipped_bits } => assert_eq!(flipped_bits, 3),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn name_and_lengths() {
        let rs = ReedSolomon::new(36, 32).unwrap();
        assert_eq!(rs.name(), "RS(36,32)");
        assert_eq!(rs.data_len(), 32);
        assert_eq!(rs.check_len(), 4);
        assert_eq!(rs.t(), 2);
    }
}
