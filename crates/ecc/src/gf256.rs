//! Arithmetic over the finite field GF(2^8).
//!
//! All symbol-oriented codes in this crate (Reed–Solomon, chipkill-style
//! correction) operate over GF(2^8) with the conventional primitive
//! polynomial `x^8 + x^4 + x^3 + x^2 + 1` (0x11D), the same field used by
//! CCSDS/DVB Reed–Solomon and by most memory-ECC literature.
//!
//! The implementation is table-driven: log/antilog tables are computed once
//! in a `const` context so field operations are branch-light lookups.
//!
//! # Examples
//!
//! ```
//! use ccraft_ecc::gf256::Gf256;
//!
//! let a = Gf256::new(0x53);
//! let b = Gf256::new(0xCA);
//! // Multiplication distributes over XOR-addition.
//! let c = Gf256::new(0x0F);
//! assert_eq!(a * (b + c), a * b + a * c);
//! // Every non-zero element has a multiplicative inverse.
//! assert_eq!((a * a.inverse().unwrap()).value(), 1);
//! ```

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Sub};

/// The primitive polynomial for GF(2^8): `x^8 + x^4 + x^3 + x^2 + 1`.
pub const PRIMITIVE_POLY: u16 = 0x11D;

/// Number of elements of the field.
pub const FIELD_SIZE: usize = 256;

/// Order of the multiplicative group (`FIELD_SIZE - 1`).
pub const GROUP_ORDER: usize = 255;

const fn build_exp_table() -> [u8; 512] {
    let mut exp = [0u8; 512];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < GROUP_ORDER {
        exp[i] = x as u8;
        exp[i + GROUP_ORDER] = x as u8; // duplicated so exp[log a + log b] needs no mod
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= PRIMITIVE_POLY;
        }
        i += 1;
    }
    // Positions >= 2*GROUP_ORDER are never indexed; leave the last two zero.
    exp
}

const fn build_log_table(exp: &[u8; 512]) -> [u8; 256] {
    let mut log = [0u8; 256];
    let mut i = 0;
    while i < GROUP_ORDER {
        log[exp[i] as usize] = i as u8;
        i += 1;
    }
    log
}

/// `EXP[i] = alpha^i` for `i in 0..510` (doubled to avoid a modulo in `mul`).
pub(crate) static EXP: [u8; 512] = build_exp_table();
/// `LOG[a] = log_alpha(a)` for non-zero `a`; `LOG[0]` is unused (0).
pub(crate) static LOG: [u8; 256] = build_log_table(&EXP);

/// An element of GF(2^8).
///
/// Addition is XOR; multiplication is polynomial multiplication modulo
/// [`PRIMITIVE_POLY`]. The type is a transparent `u8` newtype and is free to
/// copy.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct Gf256(u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);
    /// The conventional generator `alpha = x` (0x02).
    pub const ALPHA: Gf256 = Gf256(2);

    /// Wraps a raw byte as a field element.
    #[inline]
    pub const fn new(value: u8) -> Self {
        Gf256(value)
    }

    /// Returns the raw byte value.
    #[inline]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Returns `true` if this is the additive identity.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `alpha^i` for any exponent (reduced modulo the group order).
    #[inline]
    pub fn alpha_pow(i: i32) -> Self {
        let i = i.rem_euclid(GROUP_ORDER as i32) as usize;
        Gf256(EXP[i])
    }

    /// Discrete logarithm base alpha.
    ///
    /// Returns `None` for zero, which has no logarithm.
    #[inline]
    pub fn log(self) -> Option<u8> {
        if self.is_zero() {
            None
        } else {
            Some(LOG[self.0 as usize])
        }
    }

    /// Multiplicative inverse.
    ///
    /// Returns `None` for zero.
    #[inline]
    pub fn inverse(self) -> Option<Self> {
        if self.is_zero() {
            None
        } else {
            Some(Gf256(EXP[GROUP_ORDER - LOG[self.0 as usize] as usize]))
        }
    }

    /// Raises this element to an arbitrary integer power.
    ///
    /// `0^0` is defined as 1; `0^n` is 0 for `n > 0`; negative powers of
    /// zero panic.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero and `n` is negative.
    pub fn pow(self, n: i32) -> Self {
        if self.is_zero() {
            if n == 0 {
                return Gf256::ONE;
            }
            assert!(n > 0, "negative power of zero in GF(256)");
            return Gf256::ZERO;
        }
        let l = LOG[self.0 as usize] as i64;
        let e = (l * n as i64).rem_euclid(GROUP_ORDER as i64) as usize;
        Gf256(EXP[e])
    }
}

// GF(2^8) addition IS xor (characteristic 2) — not a typo for `+`.
#[allow(clippy::suspicious_arithmetic_impl)]
impl Add for Gf256 {
    type Output = Gf256;
    #[inline]
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

#[allow(clippy::suspicious_op_assign_impl)]
impl AddAssign for Gf256 {
    #[inline]
    fn add_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

// Subtraction equals addition in characteristic 2; provided for readability
// of textbook decoder formulas.
#[allow(clippy::suspicious_arithmetic_impl)]
impl Sub for Gf256 {
    type Output = Gf256;
    #[inline]
    fn sub(self, rhs: Gf256) -> Gf256 {
        self + rhs
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    #[inline]
    fn mul(self, rhs: Gf256) -> Gf256 {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf256::ZERO;
        }
        let idx = LOG[self.0 as usize] as usize + LOG[rhs.0 as usize] as usize;
        Gf256(EXP[idx])
    }
}

impl MulAssign for Gf256 {
    #[inline]
    fn mul_assign(&mut self, rhs: Gf256) {
        *self = *self * rhs;
    }
}

// Division multiplies by the field inverse — the only definition there is.
#[allow(clippy::suspicious_arithmetic_impl)]
impl Div for Gf256 {
    type Output = Gf256;
    /// # Panics
    ///
    /// Panics on division by zero.
    #[inline]
    // Documented invariant panic: division by zero is a caller bug, same
    // as integer `/`.
    #[allow(clippy::expect_used)]
    fn div(self, rhs: Gf256) -> Gf256 {
        let inv = rhs.inverse().expect("division by zero in GF(256)");
        self * inv
    }
}

impl From<u8> for Gf256 {
    #[inline]
    fn from(value: u8) -> Self {
        Gf256(value)
    }
}

impl From<Gf256> for u8 {
    #[inline]
    fn from(value: Gf256) -> Self {
        value.0
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf256({:#04x})", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#04x}", self.0)
    }
}

impl fmt::LowerHex for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

/// Evaluates a polynomial with coefficients in GF(2^8) at `x` using
/// Horner's rule. `coeffs[0]` is the highest-degree coefficient.
#[inline]
pub fn poly_eval(coeffs: &[Gf256], x: Gf256) -> Gf256 {
    let mut acc = Gf256::ZERO;
    for &c in coeffs {
        acc = acc * x + c;
    }
    acc
}

/// Multiplies two polynomials over GF(2^8). `a[0]`/`b[0]` are the
/// highest-degree coefficients; likewise for the returned product.
pub fn poly_mul(a: &[Gf256], b: &[Gf256]) -> Vec<Gf256> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![Gf256::ZERO; a.len() + b.len() - 1];
    for (i, &ai) in a.iter().enumerate() {
        if ai.is_zero() {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            out[i + j] += ai * bj;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_log_are_inverse_bijections() {
        for v in 1..=255u8 {
            let g = Gf256::new(v);
            let l = g.log().unwrap();
            assert_eq!(Gf256::alpha_pow(l as i32), g, "log/exp mismatch for {v}");
        }
    }

    #[test]
    fn alpha_generates_the_multiplicative_group() {
        let mut seen = [false; 256];
        let mut x = Gf256::ONE;
        for _ in 0..GROUP_ORDER {
            assert!(!seen[x.value() as usize], "alpha has order < 255");
            seen[x.value() as usize] = true;
            x *= Gf256::ALPHA;
        }
        assert_eq!(x, Gf256::ONE, "alpha^255 != 1");
        assert!(!seen[0]);
        assert!(seen[1..].iter().all(|&s| s));
    }

    #[test]
    fn addition_is_xor_and_self_inverse() {
        let a = Gf256::new(0xAB);
        let b = Gf256::new(0x33);
        assert_eq!((a + b).value(), 0xAB ^ 0x33);
        assert_eq!(a + a, Gf256::ZERO);
        assert_eq!(a - b, a + b);
    }

    #[test]
    fn multiplication_matches_carryless_reference() {
        // Slow bitwise reference multiply for cross-checking the tables.
        fn slow_mul(mut a: u16, mut b: u16) -> u8 {
            let mut acc: u16 = 0;
            while b != 0 {
                if b & 1 != 0 {
                    acc ^= a;
                }
                a <<= 1;
                if a & 0x100 != 0 {
                    a ^= PRIMITIVE_POLY;
                }
                b >>= 1;
            }
            acc as u8
        }
        for a in (0..=255u16).step_by(7) {
            for b in (0..=255u16).step_by(5) {
                assert_eq!(
                    (Gf256::new(a as u8) * Gf256::new(b as u8)).value(),
                    slow_mul(a, b),
                    "mismatch at {a} * {b}"
                );
            }
        }
    }

    #[test]
    fn inverse_round_trips() {
        for v in 1..=255u8 {
            let g = Gf256::new(v);
            assert_eq!(g * g.inverse().unwrap(), Gf256::ONE);
            assert_eq!(g / g, Gf256::ONE);
        }
        assert_eq!(Gf256::ZERO.inverse(), None);
    }

    #[test]
    fn pow_agrees_with_repeated_multiplication() {
        let g = Gf256::new(0x1D);
        let mut acc = Gf256::ONE;
        for n in 0..20 {
            assert_eq!(g.pow(n), acc);
            acc *= g;
        }
        // Negative exponent: g^-1 * g = 1.
        assert_eq!(g.pow(-1) * g, Gf256::ONE);
        assert_eq!(Gf256::ZERO.pow(0), Gf256::ONE);
        assert_eq!(Gf256::ZERO.pow(3), Gf256::ZERO);
    }

    #[test]
    fn distributivity_spot_checks() {
        for &(a, b, c) in &[(3u8, 7u8, 250u8), (0x53, 0xCA, 0x0F), (255, 254, 253)] {
            let (a, b, c) = (Gf256::new(a), Gf256::new(b), Gf256::new(c));
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!((a + b) * c, a * c + b * c);
        }
    }

    #[test]
    fn poly_eval_horner_matches_manual() {
        // p(x) = 2x^2 + 3x + 1
        let p = [Gf256::new(2), Gf256::new(3), Gf256::new(1)];
        let x = Gf256::new(5);
        let manual = Gf256::new(2) * x * x + Gf256::new(3) * x + Gf256::new(1);
        assert_eq!(poly_eval(&p, x), manual);
        assert_eq!(poly_eval(&p, Gf256::ZERO), Gf256::new(1));
    }

    #[test]
    fn poly_mul_degree_and_identity() {
        let a = [Gf256::new(1), Gf256::new(2)]; // x + 2
        let b = [Gf256::new(1), Gf256::new(3)]; // x + 3
        let prod = poly_mul(&a, &b); // x^2 + (2+3)x + 6
        assert_eq!(prod.len(), 3);
        assert_eq!(prod[0], Gf256::ONE);
        assert_eq!(prod[1], Gf256::new(2) + Gf256::new(3));
        assert_eq!(prod[2], Gf256::new(2) * Gf256::new(3));
        // Multiplying by the constant polynomial [1] is identity.
        assert_eq!(poly_mul(&a, &[Gf256::ONE]), a.to_vec());
        assert!(poly_mul(&a, &[]).is_empty());
    }
}
