//! Single-error-correcting, double-error-detecting (SEC-DED) codes.
//!
//! The workhorse memory-protection code: an extended Hamming code that
//! corrects any single bit error and detects any double bit error within one
//! codeword. [`HammingSecDed`] is the generic bit-level construction for any
//! data width up to 120 bits; [`SecDed64`] is the canonical (72,64) memory
//! configuration (8 data bytes + 1 check byte, 12.5% redundancy) and
//! [`SecDed32`] the (39,32) on-die variant.
//!
//! # Construction
//!
//! Classic positional Hamming layout: codeword bit positions are numbered
//! from 1; positions that are powers of two hold parity bits; the remaining
//! positions hold data bits in order. Parity bit `p_i` (at position `2^i`)
//! covers every position whose binary index has bit `i` set. An overall
//! parity bit extends the code from SEC to SEC-DED:
//!
//! * syndrome == 0, overall parity ok        → clean
//! * syndrome != 0, overall parity violated  → single error at `syndrome`
//! * syndrome != 0, overall parity ok        → double error (uncorrectable)
//! * syndrome == 0, overall parity violated  → error in the parity bit itself

use crate::code::{check_lengths, Codec, DecodeOutcome};

/// Maximum supported data width in bits for the generic construction.
pub const MAX_DATA_BITS: u32 = 120;

/// A bit-level extended Hamming SEC-DED code over up to 120 data bits.
///
/// The codeword (excluding the overall parity bit) is held in a `u128` with
/// position `p` (1-based) stored at bit `p`.
///
/// # Examples
///
/// ```
/// use ccraft_ecc::secded::HammingSecDed;
///
/// let code = HammingSecDed::new(64);
/// assert_eq!(code.check_bits(), 8); // 7 Hamming + 1 overall parity
/// let cw = code.encode_bits(0xDEAD_BEEF_0123_4567);
/// assert_eq!(code.decode_bits(cw).unwrap(), 0xDEAD_BEEF_0123_4567);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HammingSecDed {
    data_bits: u32,
    /// Hamming parity bits (excluding the overall parity bit).
    parity_bits: u32,
    /// Total positions 1..=n in the positional layout.
    n: u32,
}

/// A codeword produced by [`HammingSecDed::encode_bits`]: the positional
/// word plus the overall parity bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BitCodeword {
    /// Positional layout; bit `p` of this word is codeword position `p`.
    /// Bit 0 is unused.
    pub word: u128,
    /// Overall (extended) parity over all positions.
    pub overall_parity: bool,
}

impl BitCodeword {
    /// Flips codeword position `p` (1-based). Position 0 flips the overall
    /// parity bit.
    ///
    /// # Panics
    ///
    /// Panics if `p > 127`.
    pub fn flip(&mut self, p: u32) {
        assert!(p <= 127, "codeword position out of range");
        if p == 0 {
            self.overall_parity = !self.overall_parity;
        } else {
            self.word ^= 1u128 << p;
        }
    }
}

impl HammingSecDed {
    /// Creates a SEC-DED code for `data_bits` data bits.
    ///
    /// # Panics
    ///
    /// Panics if `data_bits` is zero or exceeds [`MAX_DATA_BITS`].
    pub fn new(data_bits: u32) -> Self {
        assert!(
            data_bits > 0 && data_bits <= MAX_DATA_BITS,
            "data_bits must be in 1..={MAX_DATA_BITS}"
        );
        let mut parity_bits = 0u32;
        while (1u32 << parity_bits) < data_bits + parity_bits + 1 {
            parity_bits += 1;
        }
        let n = data_bits + parity_bits;
        debug_assert!(n < 128);
        HammingSecDed {
            data_bits,
            parity_bits,
            n,
        }
    }

    /// Number of data bits.
    pub fn data_bits(&self) -> u32 {
        self.data_bits
    }

    /// Total check bits including the overall parity bit.
    pub fn check_bits(&self) -> u32 {
        self.parity_bits + 1
    }

    /// Total codeword length in bits (data + check).
    pub fn codeword_bits(&self) -> u32 {
        self.n + 1
    }

    fn is_parity_position(p: u32) -> bool {
        p.is_power_of_two()
    }

    /// Scatters data bits into non-parity positions of the positional word.
    fn scatter(&self, data: u128) -> u128 {
        debug_assert!(self.data_bits == 128 || data >> self.data_bits == 0);
        let mut word = 0u128;
        let mut bit = 0u32;
        for p in 1..=self.n {
            if Self::is_parity_position(p) {
                continue;
            }
            if data >> bit & 1 != 0 {
                word |= 1u128 << p;
            }
            bit += 1;
        }
        word
    }

    /// Gathers data bits back out of the positional word.
    fn gather(&self, word: u128) -> u128 {
        let mut data = 0u128;
        let mut bit = 0u32;
        for p in 1..=self.n {
            if Self::is_parity_position(p) {
                continue;
            }
            if word >> p & 1 != 0 {
                data |= 1u128 << bit;
            }
            bit += 1;
        }
        data
    }

    /// XOR of the positions of all set bits — zero iff all parity checks
    /// pass.
    fn syndrome(word: u128) -> u32 {
        let mut s = 0u32;
        let mut w = word;
        while w != 0 {
            let p = w.trailing_zeros();
            s ^= p;
            w &= w - 1;
        }
        s
    }

    /// Encodes `data` (low `data_bits` bits) into a codeword.
    ///
    /// # Panics
    ///
    /// Panics if `data` has bits set above `data_bits`.
    pub fn encode_bits(&self, data: u128) -> BitCodeword {
        assert!(
            self.data_bits == 128 || data >> self.data_bits == 0,
            "data wider than {} bits",
            self.data_bits
        );
        let mut word = self.scatter(data);
        // Setting each parity bit to the syndrome bit it governs zeroes the
        // syndrome of the completed word.
        let s = Self::syndrome(word);
        for i in 0..self.parity_bits {
            if s >> i & 1 != 0 {
                word |= 1u128 << (1u32 << i);
            }
        }
        debug_assert_eq!(Self::syndrome(word), 0);
        let overall_parity = word.count_ones() % 2 == 1;
        BitCodeword {
            word,
            overall_parity,
        }
    }

    /// Decodes a codeword, correcting a single-bit error.
    ///
    /// Returns the recovered data and the decode outcome, or the outcome
    /// alone when uncorrectable.
    pub fn decode_bits_full(&self, mut cw: BitCodeword) -> (Option<u128>, DecodeOutcome) {
        let syndrome = Self::syndrome(cw.word);
        let parity_ok = (cw.word.count_ones() % 2 == 1) == cw.overall_parity;
        match (syndrome, parity_ok) {
            (0, true) => (Some(self.gather(cw.word)), DecodeOutcome::Clean),
            (0, false) => {
                // The overall parity bit itself flipped; data is intact.
                (
                    Some(self.gather(cw.word)),
                    DecodeOutcome::Corrected { flipped_bits: 0 },
                )
            }
            (s, false) => {
                if s > self.n {
                    // Points outside the codeword: multi-bit error aliasing.
                    return (None, DecodeOutcome::DetectedUncorrectable);
                }
                cw.word ^= 1u128 << s;
                let flipped_bits = if Self::is_parity_position(s) { 0 } else { 1 };
                (
                    Some(self.gather(cw.word)),
                    DecodeOutcome::Corrected { flipped_bits },
                )
            }
            (_, true) => (None, DecodeOutcome::DetectedUncorrectable),
        }
    }

    /// Convenience wrapper over [`decode_bits_full`](Self::decode_bits_full)
    /// returning only usable data.
    pub fn decode_bits(&self, cw: BitCodeword) -> Option<u128> {
        self.decode_bits_full(cw).0
    }
}

/// Byte-oriented SEC-DED codec over `W`-byte words.
///
/// Protects each `W`-byte word with an extended Hamming code whose check
/// bits are packed, together with the overall parity bit, into
/// `ceil((parity_bits+1)/8)` check bytes.
#[derive(Debug, Clone, Copy)]
pub struct SecDedCodec<const W: usize> {
    code: HammingSecDed,
}

impl<const W: usize> SecDedCodec<W> {
    /// Creates the codec.
    ///
    /// # Panics
    ///
    /// Panics if `W * 8` exceeds [`MAX_DATA_BITS`].
    pub fn new() -> Self {
        SecDedCodec {
            code: HammingSecDed::new(W as u32 * 8),
        }
    }

    fn pack_check(&self, cw: &BitCodeword) -> Vec<u8> {
        // Check bits are the parity positions in order plus overall parity.
        let mut bits: Vec<bool> = (0..self.code.parity_bits)
            .map(|i| cw.word >> (1u32 << i) & 1 != 0)
            .collect();
        bits.push(cw.overall_parity);
        let mut out = vec![0u8; self.check_bytes()];
        for (i, &b) in bits.iter().enumerate() {
            if b {
                out[i / 8] |= 1 << (i % 8);
            }
        }
        out
    }

    fn unpack_into(&self, data_word: u128, check: &[u8]) -> BitCodeword {
        let mut word = self.code.scatter(data_word);
        for i in 0..self.code.parity_bits {
            if check[(i / 8) as usize] >> (i % 8) & 1 != 0 {
                word |= 1u128 << (1u32 << i);
            }
        }
        let op_idx = self.code.parity_bits;
        let overall_parity = check[(op_idx / 8) as usize] >> (op_idx % 8) & 1 != 0;
        BitCodeword {
            word,
            overall_parity,
        }
    }

    fn check_bytes(&self) -> usize {
        (self.code.check_bits() as usize).div_ceil(8)
    }
}

impl<const W: usize> Default for SecDedCodec<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const W: usize> Codec for SecDedCodec<W> {
    fn data_len(&self) -> usize {
        W
    }

    fn check_len(&self) -> usize {
        self.check_bytes()
    }

    fn encode(&self, data: &[u8]) -> Vec<u8> {
        check_lengths(self, data, None);
        let mut word = 0u128;
        for (i, &b) in data.iter().enumerate() {
            word |= (b as u128) << (8 * i);
        }
        self.pack_check(&self.code.encode_bits(word))
    }

    fn decode(&self, data: &mut [u8], check: &[u8]) -> DecodeOutcome {
        check_lengths(self, data, Some(check));
        let mut word = 0u128;
        for (i, &b) in data.iter().enumerate() {
            word |= (b as u128) << (8 * i);
        }
        let cw = self.unpack_into(word, check);
        let (recovered, outcome) = self.code.decode_bits_full(cw);
        if let Some(rec) = recovered {
            for (i, byte) in data.iter_mut().enumerate() {
                *byte = (rec >> (8 * i)) as u8;
            }
        }
        outcome
    }

    fn name(&self) -> String {
        format!(
            "SEC-DED({},{})",
            self.code.codeword_bits(),
            self.code.data_bits()
        )
    }
}

/// The canonical (72,64) SEC-DED memory code: 8 data bytes, 1 check byte.
pub type SecDed64 = SecDedCodec<8>;

/// The (39,32) SEC-DED code used for on-die ECC: 4 data bytes, 1 check byte
/// (7 meaningful check bits).
pub type SecDed32 = SecDedCodec<4>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameters_match_textbook() {
        let c64 = HammingSecDed::new(64);
        assert_eq!(c64.check_bits(), 8);
        assert_eq!(c64.codeword_bits(), 72);
        let c32 = HammingSecDed::new(32);
        assert_eq!(c32.check_bits(), 7);
        assert_eq!(c32.codeword_bits(), 39);
        let c8 = HammingSecDed::new(8);
        assert_eq!(c8.check_bits(), 5);
        assert_eq!(c8.codeword_bits(), 13);
    }

    #[test]
    fn clean_round_trip() {
        let code = HammingSecDed::new(64);
        for data in [0u128, 1, u64::MAX as u128, 0xDEAD_BEEF_0123_4567] {
            let cw = code.encode_bits(data);
            let (rec, outcome) = code.decode_bits_full(cw);
            assert_eq!(outcome, DecodeOutcome::Clean);
            assert_eq!(rec.unwrap(), data);
        }
    }

    #[test]
    fn corrects_every_single_bit_error() {
        let code = HammingSecDed::new(64);
        let data = 0xA5A5_5A5A_0FF0_F00F_u128;
        let clean = code.encode_bits(data);
        for p in 0..=code.n {
            let mut cw = clean;
            cw.flip(p);
            let (rec, outcome) = code.decode_bits_full(cw);
            assert!(
                matches!(outcome, DecodeOutcome::Corrected { .. }),
                "position {p} not corrected: {outcome:?}"
            );
            assert_eq!(rec.unwrap(), data, "wrong correction at position {p}");
        }
    }

    #[test]
    fn detects_every_double_bit_error() {
        let code = HammingSecDed::new(32);
        let data = 0x1234_5678_u128;
        let clean = code.encode_bits(data);
        for p1 in 0..=code.n {
            for p2 in (p1 + 1)..=code.n {
                let mut cw = clean;
                cw.flip(p1);
                cw.flip(p2);
                let (_, outcome) = code.decode_bits_full(cw);
                assert_eq!(
                    outcome,
                    DecodeOutcome::DetectedUncorrectable,
                    "double error ({p1},{p2}) not detected"
                );
            }
        }
    }

    #[test]
    fn byte_codec_round_trip_and_correction() {
        let codec = SecDed64::new();
        assert_eq!(codec.data_len(), 8);
        assert_eq!(codec.check_len(), 1);
        let original = *b"\x00\xFF\x55\xAA\x01\x80\x7E\x81";
        let check = codec.encode(&original);
        // Clean decode.
        let mut data = original;
        assert_eq!(codec.decode(&mut data, &check), DecodeOutcome::Clean);
        // Every single-bit data error is corrected back.
        for byte in 0..8 {
            for bit in 0..8 {
                let mut data = original;
                data[byte] ^= 1 << bit;
                let outcome = codec.decode(&mut data, &check);
                assert_eq!(outcome, DecodeOutcome::Corrected { flipped_bits: 1 });
                assert_eq!(data, original, "byte {byte} bit {bit}");
            }
        }
        // Check-byte errors are corrected without touching data.
        for bit in 0..8 {
            let mut data = original;
            let mut bad_check = check.clone();
            bad_check[0] ^= 1 << bit;
            let outcome = codec.decode(&mut data, &bad_check);
            assert_eq!(outcome, DecodeOutcome::Corrected { flipped_bits: 0 });
            assert_eq!(data, original);
        }
    }

    #[test]
    fn byte_codec_detects_double_errors() {
        let codec = SecDed32::new();
        let original = [0x12, 0x34, 0x56, 0x78];
        let check = codec.encode(&original);
        let mut data = original;
        data[0] ^= 0b11; // two adjacent bit flips
        assert_eq!(
            codec.decode(&mut data, &check),
            DecodeOutcome::DetectedUncorrectable
        );
    }

    #[test]
    fn name_and_redundancy() {
        let codec = SecDed64::new();
        assert_eq!(codec.name(), "SEC-DED(72,64)");
        assert!((codec.redundancy() - 0.125).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "data_bits")]
    fn rejects_oversized_width() {
        let _ = HammingSecDed::new(MAX_DATA_BITS + 1);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn rejects_wrong_data_len() {
        let codec = SecDed64::new();
        let _ = codec.encode(&[0u8; 4]);
    }
}
