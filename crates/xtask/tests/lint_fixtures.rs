//! Fixture tests for every lint rule: known-bad snippets must fire,
//! allow-listed ones must be waived (and counted), clean ones must pass.

use xtask::lexer::lex;
use xtask::rules::{lint_file, scope_for, FileReport, LintContext};

/// Lints a fixture as if it lived at `rel` inside the workspace.
fn run(rel: &str, src: &str) -> FileReport {
    let ctx = LintContext {
        float_stats_fields: vec!["mean_read_latency".into()],
    };
    lint_file(rel, &lex(src), scope_for(rel), &ctx)
}

fn lines_of(report: &FileReport, rule: &str) -> Vec<usize> {
    report
        .violations
        .iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.line)
        .collect()
}

#[test]
fn hash_state_fires() {
    let r = run(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/hash_fires.rs"),
    );
    assert_eq!(lines_of(&r, "default-hash-state"), vec![2, 3, 6, 10, 12]);
    assert!(r.waived.is_empty());
    assert!(r.directive_errors.is_empty());
}

#[test]
fn hash_state_allow_listed() {
    let r = run(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/hash_allowed.rs"),
    );
    assert!(r.violations.is_empty(), "waived: {:?}", r.violations);
    assert_eq!(r.waived.len(), 2);
    assert!(r.directive_errors.is_empty(), "{:?}", r.directive_errors);
    assert!(r.waived.iter().all(|w| w.rule == "default-hash-state"));
    assert!(r.waived.iter().all(|w| !w.reason.is_empty()));
}

#[test]
fn hash_state_clean() {
    let r = run(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/hash_clean.rs"),
    );
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert!(r.waived.is_empty());
    assert!(r.directive_errors.is_empty());
}

#[test]
fn hash_state_in_scope_in_harness_and_serve() {
    // Host-side code replays cached results under checksum comparison,
    // so the hasher ban extends to harness and serve.
    for rel in [
        "crates/harness/src/fixture.rs",
        "crates/serve/src/fixture.rs",
    ] {
        let r = run(rel, include_str!("fixtures/hash_fires.rs"));
        assert!(!lines_of(&r, "default-hash-state").is_empty(), "{rel}");
    }
}

#[test]
fn hash_state_out_of_scope_in_bench() {
    // The same bad source under an unscanned path is out of scope.
    let r = run(
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/hash_fires.rs"),
    );
    assert!(r.violations.is_empty());
}

#[test]
fn wall_clock_fires() {
    let r = run(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/wallclock_fires.rs"),
    );
    assert_eq!(lines_of(&r, "wall-clock"), vec![2, 5, 6, 7, 8, 9]);
}

#[test]
fn wall_clock_sleep_waived_in_store() {
    // The durable store is in wall-clock scope; its single sanctioned
    // `thread::sleep` (the bounded retry backoff) must lint clean only
    // through an explicit waiver.
    let r = run(
        "crates/harness/src/store.rs",
        include_str!("fixtures/wallclock_sleep_allowed.rs"),
    );
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.waived.len(), 1);
    assert_eq!(r.waived[0].rule, "wall-clock");
    assert!(r.directive_errors.is_empty(), "{:?}", r.directive_errors);
}

#[test]
fn store_scope_is_surgical() {
    // Only store.rs joins the wall-clock scope; the rest of the harness
    // (host-side orchestration) legitimately uses wall time.
    assert!(scope_for("crates/harness/src/store.rs").wall_clock);
    assert!(!scope_for("crates/harness/src/soak.rs").wall_clock);
    assert!(!scope_for("crates/harness/src/runner.rs").wall_clock);
}

#[test]
fn wall_clock_clean() {
    let r = run(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/wallclock_clean.rs"),
    );
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

#[test]
fn wall_clock_exempt_in_manifest() {
    // telemetry::manifest is the documented exception (run manifests
    // record real timestamps).
    let r = run(
        "crates/telemetry/src/manifest.rs",
        include_str!("fixtures/wallclock_fires.rs"),
    );
    assert!(r.violations.is_empty());
}

#[test]
fn float_stats_fires() {
    let r = run(
        "crates/sim/src/stats.rs",
        include_str!("fixtures/floatstats_fires.rs"),
    );
    // Line 5: undocumented float field; line 9: `+=` accumulation.
    assert_eq!(lines_of(&r, "float-stats"), vec![5, 9]);
}

#[test]
fn float_stats_allow_listed() {
    let r = run(
        "crates/sim/src/stats.rs",
        include_str!("fixtures/floatstats_allowed.rs"),
    );
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.waived.len(), 1);
    assert!(r.directive_errors.is_empty(), "{:?}", r.directive_errors);
}

#[test]
fn pairing_fires() {
    let r = run(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/pairing_fires.rs"),
    );
    // ProbeOnly: probe without tick (10); TickOnly: tick without probe
    // (20); BadSig: &mut receiver + non-Option return (30, 30).
    assert_eq!(lines_of(&r, "next-event-pairing"), vec![10, 20, 30, 30]);
}

#[test]
fn pairing_allow_listed() {
    let r = run(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/pairing_allowed.rs"),
    );
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.waived.len(), 1);
    assert!(r.directive_errors.is_empty(), "{:?}", r.directive_errors);
}

#[test]
fn pairing_clean() {
    let r = run(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/pairing_clean.rs"),
    );
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

#[test]
fn shard_state_fires() {
    let r = run(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/shard_state_fires.rs"),
    );
    // Line 2: Arc + Mutex; 3: RefCell; 5/6: static items; 8: the
    // thread_local macro name; 10: the static inside its body; 14: Arc +
    // Mutex again; 15: RefCell; 21: OnceLock in the type and in the call.
    assert_eq!(
        lines_of(&r, "shard-shared-state"),
        vec![2, 2, 3, 5, 6, 8, 10, 14, 14, 15, 21, 21]
    );
    assert!(r.waived.is_empty());
    assert!(r.directive_errors.is_empty(), "{:?}", r.directive_errors);
}

#[test]
fn shard_state_allow_listed() {
    let r = run(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/shard_state_allowed.rs"),
    );
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.waived.len(), 2);
    assert!(r.waived.iter().all(|w| w.rule == "shard-shared-state"));
    // The waiver syntax makes the reason mandatory; both carry one.
    assert!(r.waived.iter().all(|w| !w.reason.is_empty()));
    assert!(r.directive_errors.is_empty(), "{:?}", r.directive_errors);
}

#[test]
fn shard_state_out_of_scope_outside_sim() {
    // The same source under core/ or harness/ paths is out of scope:
    // host-side orchestration legitimately uses Arc/Mutex.
    for rel in ["crates/core/src/fixture.rs", "crates/harness/src/pool.rs"] {
        let r = run(rel, include_str!("fixtures/shard_state_fires.rs"));
        assert!(lines_of(&r, "shard-shared-state").is_empty(), "{rel}");
    }
}

#[test]
fn shard_state_does_not_flag_scoped_atomics() {
    // Atomics are the sanctioned signalling primitive; the real shard
    // engine (crates/sim/src/shard.rs) must lint clean with no waivers.
    let r = run(
        "crates/sim/src/fixture.rs",
        "use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};\n\
         struct LaneShared { progress: AtomicU64, drains: Vec<AtomicU32> }\n",
    );
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

#[test]
fn directive_errors_are_hard_errors() {
    let r = run(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/directives_bad.rs"),
    );
    assert!(r.violations.is_empty());
    assert_eq!(r.directive_errors.len(), 3, "{:?}", r.directive_errors);
    let msgs: Vec<&str> = r.directive_errors.iter().map(|d| d.msg.as_str()).collect();
    assert!(msgs[0].contains("malformed"), "{}", msgs[0]);
    assert!(msgs[1].contains("unknown rule"), "{}", msgs[1]);
    assert!(msgs[2].contains("unused"), "{}", msgs[2]);
}

#[test]
fn whole_workspace_is_clean() {
    // The real tree must satisfy its own determinism contract — all
    // eight rule families, zero stale waivers. This is the same check
    // CI runs via `cargo xtask analyze`.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = xtask::analyze_workspace(&root).expect("analyze runs");
    assert!(report.files_scanned > 20, "suspiciously few files scanned");
    assert!(
        report.is_clean(),
        "workspace analysis failed:\n{}",
        xtask::render(&report)
    );
    assert_eq!(xtask::exit_code(&report), 0);
    // Every honoured waiver must carry a non-empty reason.
    assert!(report.waived.iter().all(|w| !w.reason.is_empty()));
}
