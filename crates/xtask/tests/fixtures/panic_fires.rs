// Hot-path panic vectors: `tick` is a call-graph root, `helper` is
// reachable from it; `cold` is not reachable and must not fire.
pub fn tick(now: u64, start: u64, v: &[u32]) {
    let x = v.first().unwrap();
    let y = v[now as usize + 1];
    let [a, b] = split(v);
    let span = now - start;
    helper(span, x, y, a, b);
}

fn helper(t: u64, _x: &u32, _y: u32, _a: u32, _b: u32) {
    let _d = t.checked_sub(1).expect("positive");
}

fn cold(v: &[u32], base: usize, slot: usize) -> u32 {
    v[base + slot]
}

fn split(v: &[u32]) -> [u32; 2] {
    match v {
        [a, b] => [*a, *b],
        _ => [0, 0],
    }
}
