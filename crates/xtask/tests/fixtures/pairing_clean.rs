// Fixture: probe and tick correctly paired; trait impls and type-position
// `impl Trait` are out of scope for the pairing rule.
type Cycle = u64;

struct Component {
    due: Option<Cycle>,
    count: u64,
}

impl Component {
    pub fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        self.due
    }

    pub fn tick(&mut self, _now: Cycle) {
        self.count += 1;
    }
}

trait Probe {
    fn next_event(&self) -> Option<Cycle>;
}

impl Probe for Component {
    fn next_event(&self) -> Option<Cycle> {
        self.due
    }
}

fn make(items: impl Iterator<Item = u64>) -> impl Iterator<Item = u64> {
    items.map(|x| x + 1)
}
