// Fixture: directive-level errors — malformed, unknown rule, and unused.
// lint: allow(default-hash-state
// lint: allow(no-such-rule) reason=rule name does not exist
// lint: allow(wall-clock) reason=stale waiver with no violation underneath
fn nothing_wrong_here() {}
