// Fixture (linted as crates/sim/src/stats.rs): the float field has no
// allow directive, and the accumulation below must fire too.
pub struct SimStats {
    pub cycles: u64,
    pub mean_read_latency: f64,
}

fn accumulate(stats: &mut SimStats, sample: f64) {
    stats.mean_read_latency += sample;
}
