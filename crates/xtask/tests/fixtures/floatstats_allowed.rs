// Fixture (linted as crates/sim/src/stats.rs): float field justified.
pub struct SimStats {
    pub cycles: u64,
    pub read_latency_sum: u64,
    pub reads: u64,
    // lint: allow(float-stats) reason=derived once at end of run from integer sums, never accumulated
    pub mean_read_latency: f64,
}

fn finalize(stats: &mut SimStats) {
    stats.mean_read_latency = stats.read_latency_sum as f64 / stats.reads.max(1) as f64;
}
