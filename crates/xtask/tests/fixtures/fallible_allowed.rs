// A sanctioned best-effort discard, waived with the reason the failure
// is benign.
use crate::store;
use std::path::Path;

fn evict(path: &Path) {
    // lint: allow(fallible-result) reason=best-effort cleanup; the entry is already counted corrupt and the next read retries the quarantine
    let _ = store::quarantine(path);
}
