// Fixture: a probe-only component waived with a reason (mirrors the real
// crossbar, which advances in its deliver_* methods).
type Cycle = u64;

struct Fabric {
    due: Option<Cycle>,
}

impl Fabric {
    // lint: allow(next-event-pairing) reason=advances in deliver_requests/deliver_responses, driven per cycle by the loop
    pub fn next_event(&self) -> Option<Cycle> {
        self.due
    }

    pub fn deliver_requests(&mut self) {
        self.due = None;
    }
}
