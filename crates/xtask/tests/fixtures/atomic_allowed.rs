// A Relaxed counter off the built-in allowlist, sanctioned by a waiver
// naming the fence that sequences it.
use std::sync::atomic::{AtomicU64, Ordering};

struct Sh {
    progress: AtomicU64,
    retries: AtomicU64,
}

fn publish(sh: &Sh, v: u64) {
    // lint: allow(atomic-discipline) reason=monotonic retry counter; visibility is sequenced by the progress Release store below
    sh.retries.fetch_add(1, Ordering::Relaxed);
    sh.progress.store(v, Ordering::Release);
}

fn consume(sh: &Sh) -> u64 {
    sh.progress.load(Ordering::Acquire)
}
