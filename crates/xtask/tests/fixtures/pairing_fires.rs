// Fixture: three pairing violations — probe without tick, tick without
// probe, and a probe with a mutable receiver / wrong return type.
type Cycle = u64;

struct ProbeOnly {
    due: Cycle,
}

impl ProbeOnly {
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        (self.due > now).then_some(self.due)
    }
}

struct TickOnly {
    count: u64,
}

impl TickOnly {
    pub fn tick(&mut self, _now: Cycle) {
        self.count += 1;
    }
}

struct BadSig {
    due: Cycle,
}

impl BadSig {
    pub fn next_event(&mut self, _now: Cycle) -> Cycle {
        self.due
    }

    pub fn tick(&mut self, _now: Cycle) {}
}
