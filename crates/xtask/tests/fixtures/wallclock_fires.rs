// Fixture: every marked line must fire `wall-clock`.
use std::time::Instant;

fn timed() {
    let t0 = Instant::now();
    let _ = std::time::SystemTime::now();
    let mut rng = rand::thread_rng();
    let x: u64 = rand::random();
    std::thread::sleep(std::time::Duration::from_millis(1));
    let _ = (t0, rng, x);
}
