// Fixture: violations fully covered by verified allow directives.
// lint: allow(default-hash-state) reason=scratch set in a one-shot debug dump, order never observed
use std::collections::HashSet;

fn dump() {
    let mut seen = HashSet::new(); // lint: allow(default-hash-state) reason=order never observed
    seen.insert(1u64);
}
