// Fixture: the store's sanctioned retry-backoff sleep, waived exactly
// like crates/harness/src/store.rs does it.
fn sleep_backoff(ms: u64) {
    // lint: allow(wall-clock) reason=bounded deterministic retry backoff for transient I/O
    std::thread::sleep(std::time::Duration::from_millis(ms));
}
