// Discarded persistence Results: `let _ =` and bare-statement forms.
use crate::store;
use std::fs::File;
use std::path::Path;

fn flush(path: &Path) {
    let _ = store::write_durable(path, b"x");
    store::quarantine(path);
    let _ = path.read_verified();
    let _ = File::open(path);
}

fn handled(path: &Path) -> Result<(), store::Error> {
    store::write_durable(path, b"x")?;
    let _report = store::quarantine(path);
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn discard_is_fine_in_tests() {
        let _ = crate::store::quarantine(std::path::Path::new("x"));
    }
}
