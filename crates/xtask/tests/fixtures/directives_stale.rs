// A waiver whose violation has since been fixed: the directive is now
// stale and must be a hard error so the inventory cannot rot.
pub fn tick(now: u64, start: u64) -> u64 {
    // lint: allow(panic-freedom) reason=now >= start is the loop invariant
    now.saturating_sub(start)
}
