// Fixture: simulated time and seeded randomness are fine.
type Cycle = u64;

struct Clock {
    now: Cycle,
}

fn step(c: &mut Clock, rng: &mut SmallRng) -> u64 {
    c.now += 1;
    rng.next_u64()
}

struct SmallRng(u64);

impl SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.0
    }
}
