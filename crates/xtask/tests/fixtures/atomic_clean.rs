// The real cross-lane protocol shape: a Release/Acquire progress
// watermark sequencing Relaxed stores into the allowlisted drain ring.
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

struct LaneShared {
    progress: AtomicU64,
    drains: Vec<AtomicU32>,
}

fn run_epoch(sh: &LaneShared, t: u64, slot: usize, drained: u32) {
    sh.drains[slot].store(drained, Ordering::Relaxed);
    sh.progress.store(t + 1, Ordering::Release);
}

fn fold(sh: &LaneShared, slot: usize) -> u64 {
    let through = sh.progress.load(Ordering::Acquire);
    through + u64::from(sh.drains[slot].load(Ordering::Relaxed))
}
