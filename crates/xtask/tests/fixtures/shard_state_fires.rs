// Fixture: every marked line here must fire `shard-shared-state`.
use std::sync::{Arc, Mutex}; // fires twice: Arc and Mutex
use std::cell::RefCell; // fires: RefCell

static EPOCH_COUNTER: u64 = 0; // fires: static item
static mut SCRATCH: [u64; 4] = [0; 4]; // fires: static mut item

thread_local! {
    // fires on the macro name AND on the inner static item.
    static LANE_ID: std::cell::Cell<u64> = std::cell::Cell::new(0);
}

struct BadSlice {
    queue: Arc<Mutex<Vec<u64>>>, // fires twice: Arc and Mutex
    memo: RefCell<Vec<u64>>,     // fires: RefCell
}

fn lookup() -> &'static str {
    // A plain `'static` lifetime must NOT fire: it lexes as a lifetime,
    // not an item keyword.
    let table: std::sync::OnceLock<Vec<u64>> = std::sync::OnceLock::new(); // fires: OnceLock
    let _ = table;
    "ok"
}
