// Persistence Results handled or propagated — nothing discarded.
use crate::store;
use std::path::Path;

fn flush(path: &Path) -> Result<(), store::Error> {
    store::write_durable(path, b"x")?;
    if let Err(e) = store::quarantine(path) {
        eprintln!("quarantine failed: {e}");
    }
    Ok(())
}
