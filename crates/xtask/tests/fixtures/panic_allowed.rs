// Hot-path panic vectors, each carrying its invariant waiver.
pub fn tick(now: u64, start: u64, v: &[u32]) {
    // lint: allow(panic-freedom) reason=v is never empty: sized at config validation
    let x = v.first().unwrap();
    // lint: allow(panic-freedom) reason=now + 1 < v.len() by the epoch bound
    let y = v[now as usize + 1];
    // lint: allow(panic-freedom) reason=now >= start is the loop invariant
    let span = now - start;
    sink(x, y, span);
}

fn sink(_x: &u32, _y: u32, _s: u64) {}
