// The same shapes made safe: `get`, saturating arithmetic, and panic
// vectors confined to test code or functions the cycle loop never calls.
pub fn tick(now: u64, start: u64, v: &[u32]) {
    let x = v.first().copied().unwrap_or(0);
    let y = v.get(now as usize + 1).copied().unwrap_or(0);
    let span = now.saturating_sub(start);
    sink(x, y, span);
}

fn sink(_x: u32, _y: u32, _s: u64) {}

fn unreached(v: &[u32], base: usize, slot: usize) -> u32 {
    v[base + slot]
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
