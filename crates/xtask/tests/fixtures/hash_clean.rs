// Fixture: explicit hashers and ordered maps are all fine.
use std::collections::{BTreeMap, BTreeSet};
use std::hash::BuildHasherDefault;

pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

struct FxHasher;

struct Tracker {
    index: FxHashMap<u64, usize>,
    inflight: FxHashSet<u64>,
    ordered: BTreeMap<u64, u64>,
    set: BTreeSet<u64>,
}

fn turbofish() {
    // A comparison, not a generic list: `HashMapLike < limit`.
    let hash_map_like = 3;
    let limit = 4;
    let _ = hash_map_like < limit;
    let _ = "HashMap in a string is not a use";
}
