// Fixture: shard-shared-state violations fully covered by verified allow
// directives. Every directive must carry a reason; a reason-less or
// unused directive is a hard error (see lint_fixtures.rs).
// lint: allow(shard-shared-state) reason=codec dispatch table built once before any lane spawns and never written after
static DECODE_TABLE: [u8; 16] = [0; 16];

struct DebugProbe {
    // lint: allow(shard-shared-state) reason=debug-only probe compiled out of release; never shared across lanes
    trace: std::cell::RefCell<Vec<u64>>,
}

fn atomics_are_sanctioned() {
    // Scoped atomics are the blessed cross-lane signalling primitive and
    // must NOT fire: no directive needed.
    let progress = std::sync::atomic::AtomicU64::new(0);
    let _ = progress.load(std::sync::atomic::Ordering::Acquire);
}
