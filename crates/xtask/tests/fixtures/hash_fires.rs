// Fixture: every line here must fire `default-hash-state`.
use std::collections::HashMap;
use std::collections::hash_map::RandomState;

struct CoalesceBuffer {
    members: HashMap<u64, u64>,
}

fn scratch() {
    let mut seen = std::collections::HashSet::new();
    seen.insert(1u64);
    let m = HashMap::<u64, u64>::new();
    let _ = (seen, m);
}
