// Atomic-discipline violations: a missing ordering, Relaxed off the
// allowlist, an Acquire-side publish, and a one-sided Release.
use std::sync::atomic::{AtomicU64, Ordering};

struct Sh {
    progress: AtomicU64,
    scratch: AtomicU64,
    flag: AtomicU64,
    mark: AtomicU64,
    beacon: AtomicU64,
}

fn publish(sh: &Sh, v: u64) {
    sh.progress.store(v, Ordering::Release);
    sh.flag.store(v);
    sh.scratch.fetch_add(1, Ordering::Relaxed);
    sh.mark.swap(v, Ordering::Acquire);
    sh.beacon.store(v, Ordering::Release);
}

fn consume(sh: &Sh) -> u64 {
    let m = sh.mark.load(Ordering::Acquire);
    sh.progress.load(Ordering::Acquire) + m
}

#[cfg(test)]
mod tests {
    #[test]
    fn relaxed_is_fine_in_tests() {
        let sh = super::Sh {
            progress: Default::default(),
            scratch: Default::default(),
            flag: Default::default(),
            mark: Default::default(),
            beacon: Default::default(),
        };
        sh.scratch.store(1, std::sync::atomic::Ordering::Relaxed);
    }
}
