//! Fixture tests for the function-scoped analysis families
//! (panic-freedom, atomic-discipline, fallible-result) and the
//! stale-waiver / exit-code contracts.

use xtask::analyze::{analyze_file, AnalyzeContext};
use xtask::lexer::lex;
use xtask::rules::{scope_for, DirectiveKind, FileReport, LintContext};
use xtask::LintReport;

/// Analyzes a fixture as if it lived at `rel`, treating the fixture
/// itself as the whole crate (the call graph is seeded from roots found
/// in the file).
fn run(rel: &str, src: &str) -> FileReport {
    let lexed = lex(src);
    let ctx = AnalyzeContext::single_file(rel, &lexed, LintContext::default());
    analyze_file(rel, &lexed, scope_for(rel), &ctx)
}

/// Same, with an explicit set of known `Result`-returning persistence
/// functions (normally harvested from store/checkpoint/cellcache).
fn run_fallible(rel: &str, src: &str, fns: &[&str]) -> FileReport {
    let lexed = lex(src);
    let mut ctx = AnalyzeContext::single_file(rel, &lexed, LintContext::default());
    ctx.fallible_fns = fns.iter().map(|s| s.to_string()).collect();
    analyze_file(rel, &lexed, scope_for(rel), &ctx)
}

fn lines_of(report: &FileReport, rule: &str) -> Vec<usize> {
    report
        .violations
        .iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.line)
        .collect()
}

#[test]
fn panic_freedom_fires() {
    let r = run(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/panic_fires.rs"),
    );
    // 4: unwrap; 5: computed index; 6: let slice pattern; 7: cycle
    // subtraction; 12: expect in a reachable helper; 21: match-arm slice
    // pattern in a reachable helper. `cold` (never called) is line 16 and
    // must not appear.
    assert_eq!(lines_of(&r, "panic-freedom"), vec![4, 5, 6, 7, 12, 21]);
    assert!(r.directive_errors.is_empty(), "{:?}", r.directive_errors);
}

#[test]
fn panic_freedom_allow_listed() {
    let r = run(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/panic_allowed.rs"),
    );
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.waived.len(), 3);
    assert!(r.waived.iter().all(|w| w.rule == "panic-freedom"));
    assert!(r.waived.iter().all(|w| !w.reason.is_empty()));
    assert!(r.directive_errors.is_empty(), "{:?}", r.directive_errors);
}

#[test]
fn panic_freedom_clean() {
    // Safe forms on the hot path; panic vectors only in unreachable or
    // #[cfg(test)] code.
    let r = run(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/panic_clean.rs"),
    );
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert!(r.waived.is_empty());
}

#[test]
fn panic_freedom_out_of_scope_in_invariants_and_core() {
    // invariants.rs exists to panic; core/ is not in the cycle loop.
    for rel in ["crates/sim/src/invariants.rs", "crates/core/src/fixture.rs"] {
        let r = run(rel, include_str!("fixtures/panic_fires.rs"));
        assert!(lines_of(&r, "panic-freedom").is_empty(), "{rel}");
    }
}

#[test]
fn atomic_discipline_fires() {
    let r = run(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/atomic_fires.rs"),
    );
    // 15: no Ordering named; 16: Relaxed off the allowlist; 17: publish
    // side of a consumed field without Release; 18: Release with no
    // consumer. The progress pair (14/22-23) and the #[cfg(test)] store
    // are clean.
    assert_eq!(lines_of(&r, "atomic-discipline"), vec![15, 16, 17, 18]);
    assert!(r.directive_errors.is_empty(), "{:?}", r.directive_errors);
}

#[test]
fn atomic_discipline_allow_listed() {
    let r = run(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/atomic_allowed.rs"),
    );
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.waived.len(), 1);
    assert_eq!(r.waived[0].rule, "atomic-discipline");
    assert!(r.directive_errors.is_empty(), "{:?}", r.directive_errors);
}

#[test]
fn atomic_discipline_clean_on_the_real_protocol_shape() {
    let r = run(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/atomic_clean.rs"),
    );
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert!(r.waived.is_empty());
}

#[test]
fn atomic_discipline_out_of_scope_outside_sim() {
    let r = run(
        "crates/harness/src/fixture.rs",
        include_str!("fixtures/atomic_fires.rs"),
    );
    assert!(lines_of(&r, "atomic-discipline").is_empty());
}

#[test]
fn fallible_result_fires() {
    let r = run_fallible(
        "crates/harness/src/fixture.rs",
        include_str!("fixtures/fallible_fires.rs"),
        &["write_durable", "quarantine", "read_verified"],
    );
    // 7: `let _ =` on a qualified call; 8: bare-statement discard; 9:
    // `let _ =` on a method call. `File::open` (10), the `?` propagation
    // (14), the named binding (15), and the #[cfg(test)] discard stay
    // clean.
    assert_eq!(lines_of(&r, "fallible-result"), vec![7, 8, 9]);
    assert!(r.directive_errors.is_empty(), "{:?}", r.directive_errors);
}

#[test]
fn fallible_result_fires_in_serve_too() {
    let r = run_fallible(
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/fallible_fires.rs"),
        &["write_durable", "quarantine", "read_verified"],
    );
    assert_eq!(lines_of(&r, "fallible-result"), vec![7, 8, 9]);
}

#[test]
fn fallible_result_allow_listed() {
    let r = run_fallible(
        "crates/harness/src/fixture.rs",
        include_str!("fixtures/fallible_allowed.rs"),
        &["quarantine"],
    );
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.waived.len(), 1);
    assert_eq!(r.waived[0].rule, "fallible-result");
}

#[test]
fn fallible_result_clean() {
    let r = run_fallible(
        "crates/harness/src/fixture.rs",
        include_str!("fixtures/fallible_clean.rs"),
        &["write_durable", "quarantine"],
    );
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert!(r.waived.is_empty());
}

#[test]
fn fallible_result_out_of_scope_in_sim() {
    let r = run_fallible(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/fallible_fires.rs"),
        &["write_durable", "quarantine", "read_verified"],
    );
    assert!(lines_of(&r, "fallible-result").is_empty());
}

#[test]
fn stale_waiver_is_a_hard_error() {
    // The violation the directive once covered has been fixed; the
    // leftover directive must surface as DirectiveKind::Stale.
    let r = run(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/directives_stale.rs"),
    );
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert!(r.waived.is_empty());
    assert_eq!(r.directive_errors.len(), 1, "{:?}", r.directive_errors);
    assert_eq!(r.directive_errors[0].kind, DirectiveKind::Stale);
    assert_eq!(r.directive_errors[0].line, 4);
}

#[test]
fn exit_codes_follow_the_contract() {
    use xtask::rules::{DirectiveError, Violation};
    let clean = LintReport::default();
    assert_eq!(xtask::exit_code(&clean), 0);

    let mut violations = LintReport::default();
    violations.violations.push(Violation {
        rule: "panic-freedom",
        file: "f.rs".into(),
        line: 1,
        msg: "m".into(),
    });
    assert_eq!(xtask::exit_code(&violations), 1);

    // Directive errors dominate plain violations.
    let mut stale = violations;
    stale.directive_errors.push(DirectiveError {
        file: "f.rs".into(),
        line: 2,
        kind: DirectiveKind::Stale,
        msg: "stale".into(),
    });
    assert_eq!(xtask::exit_code(&stale), 2);
}

#[test]
fn github_format_emits_error_annotations() {
    let mut report = LintReport::default();
    report.violations.push(xtask::rules::Violation {
        rule: "atomic-discipline",
        file: "crates/sim/src/shard.rs".into(),
        line: 42,
        msg: "needs an\nexplicit Ordering".into(),
    });
    let out = xtask::render_github(&report);
    assert!(
        out.contains(
            "::error file=crates/sim/src/shard.rs,line=42,title=xtask atomic-discipline::"
        ),
        "{out}"
    );
    // Newlines must be %0A-escaped or GitHub truncates the message.
    assert!(out.contains("needs an%0Aexplicit Ordering"), "{out}");
}

#[test]
fn waiver_listing_is_sorted_file_then_line() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = xtask::analyze_workspace(&root).expect("analyze runs");
    let listing = xtask::render_waivers(&report);
    let keys: Vec<(String, usize)> = listing
        .lines()
        .map(|l| {
            let mut it = l.splitn(3, [':', ' ']);
            let file = it.next().expect("file").to_string();
            let line = it.next().expect("line").parse().expect("line number");
            (file, line)
        })
        .collect();
    assert!(!keys.is_empty(), "the canonical waiver inventory is gone?");
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
    // The canonical inventory from DESIGN.md §12 must be present: the
    // store retry sleep and the three profiler wall-clock sites.
    assert!(listing.contains("crates/harness/src/store.rs"));
    assert_eq!(
        listing
            .lines()
            .filter(|l| l.starts_with("crates/telemetry/src/profiler.rs"))
            .count(),
        3
    );
}
