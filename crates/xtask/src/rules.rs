//! The determinism lint rules.
//!
//! Five rules, all properties clippy cannot express because they are
//! repo-specific policy rather than general Rust hygiene:
//!
//! * `default-hash-state` (L1) — no default-`RandomState` `HashMap`/`HashSet`
//!   in `sim`/`core`/`ecc`. Iteration order of the default hasher is
//!   randomly seeded per process, which silently breaks the bit-identical
//!   `SimStats` replay contract. Use `fxmap::FxHashMap`/`FxHashSet` or
//!   `BTreeMap`/`BTreeSet`.
//! * `wall-clock` (L2) — no `Instant`/`SystemTime` and no ambient
//!   randomness (`thread_rng`, `rand::random`) outside `harness`/`bench`/
//!   `telemetry::manifest`. Simulated time and seeded RNGs only.
//! * `float-stats` (L3) — no `f32`/`f64` accumulation into `SimStats`
//!   fields: float addition is non-associative, so parallel or reordered
//!   accumulation drifts. Float fields themselves must carry an allow
//!   directive documenting why they are safe (e.g. derived once at end of
//!   run from integer sums).
//! * `next-event-pairing` (L4) — in `sim`, any inherent impl providing the
//!   `next_event` idle fast-forward probe must also provide its paired
//!   `tick`, and vice versa, so new components cannot silently opt out of
//!   (or lie to) the fast-forward machinery. `next_event` must be a
//!   side-effect-free `&self` probe returning `Option<Cycle>`.
//! * `shard-shared-state` (L5) — in `sim`, no `static` items and no
//!   shared-mutability primitives (`lazy_static`, `thread_local`,
//!   `OnceLock`/`OnceCell`/`LazyLock`, `Mutex`/`RwLock`, `RefCell`,
//!   `Rc`/`Arc`). The channel-sharded engine replays bit-identically only
//!   because every piece of mutable state has exactly one owner per
//!   epoch; process-global or reference-counted state would leak across
//!   shard boundaries invisibly. Scoped `Atomic*` values are exempt —
//!   they are the blessed cross-lane signalling primitive, always owned
//!   by one `run_prologue` call and dropped with it.
//!
//! Violations can be waived with `// lint: allow(<rule>) reason=<text>` on
//! or immediately above the offending line; every directive must justify
//! itself with a reason and must match a real violation (unused directives
//! are hard errors, so stale waivers cannot linger).

use crate::lexer::{Directive, Lexed, TokKind, Token};

/// Canonical rule names, as used in `allow(...)` directives. The first
/// five are the flat token rules of this module; the last three are the
/// function-scoped analysis rules of [`crate::analyze`].
pub const RULE_NAMES: [&str; 8] = [
    "default-hash-state",
    "wall-clock",
    "float-stats",
    "next-event-pairing",
    "shard-shared-state",
    "panic-freedom",
    "atomic-discipline",
    "fallible-result",
];

/// Which rules apply to a file, derived from its workspace-relative path.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scope {
    /// L1: default-hasher ban (sim/core/ecc).
    pub hash_state: bool,
    /// L2: wall-clock / ambient randomness ban.
    pub wall_clock: bool,
    /// L3 (declaration side): float `SimStats` fields need an allow.
    pub float_fields: bool,
    /// L3 (use side): no compound assignment into float stats fields.
    pub float_accum: bool,
    /// L4: next_event/tick pairing (sim only).
    pub pairing: bool,
    /// L5: static items / shared-mutability primitives ban (sim only).
    pub shard_state: bool,
    /// A1: panic vectors in the cycle-loop call graph (sim, minus the
    /// invariants module whose whole purpose is to panic).
    pub panic_freedom: bool,
    /// A2: explicit/paired atomic orderings (sim only).
    pub atomic_discipline: bool,
    /// A3: no discarded persistence `Result`s (harness + serve).
    pub fallible_result: bool,
}

/// Path of the `SimStats` declaration, the anchor for rule L3.
pub const SIMSTATS_PATH: &str = "crates/sim/src/stats.rs";

/// Computes the rule scope for a workspace-relative path (forward slashes).
pub fn scope_for(rel: &str) -> Scope {
    let in_any = |roots: &[&str]| roots.iter().any(|r| rel.starts_with(r));
    let deterministic_core = in_any(&["crates/sim/src/", "crates/core/src/", "crates/ecc/src/"]);
    let host_side = in_any(&["crates/harness/src/", "crates/serve/src/"]);
    let in_sim = rel.starts_with("crates/sim/src/");
    Scope {
        // Host-side code replays cached results and compares checksums;
        // nondeterministic iteration order is as fatal there as in sim.
        hash_state: deterministic_core || host_side,
        wall_clock: ((deterministic_core
            || in_any(&["crates/workloads/src/", "crates/telemetry/src/"]))
            && rel != "crates/telemetry/src/manifest.rs")
            // The durable store is host-side but must stay deterministic:
            // its single retry-backoff sleep carries an explicit waiver.
            || rel == "crates/harness/src/store.rs"
            // The serve daemon hands out cached deterministic results;
            // its two sanctioned wall-clock sites carry waivers.
            || rel.starts_with("crates/serve/src/"),
        float_fields: rel == SIMSTATS_PATH,
        float_accum: in_any(&["crates/sim/src/", "crates/core/src/"]),
        pairing: in_sim,
        shard_state: in_sim,
        // invariants.rs exists to panic on contract breaches; exempting
        // it keeps the rule about *accidental* panic vectors.
        panic_freedom: in_sim && rel != "crates/sim/src/invariants.rs",
        atomic_discipline: in_sim,
        fallible_result: host_side,
    }
}

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule name (one of [`RULE_NAMES`]).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable explanation.
    pub msg: String,
}

/// A violation waived by a verified allow directive.
#[derive(Debug, Clone)]
pub struct Waived {
    /// Rule name.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the waived violation.
    pub line: usize,
    /// The justification from the directive.
    pub reason: String,
}

/// What is wrong with a directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectiveKind {
    /// Unparseable directive text (e.g. missing `reason=`).
    Malformed,
    /// `allow(<rule>)` names a rule that does not exist.
    UnknownRule,
    /// The directive no longer suppresses any violation.
    Stale,
}

/// Directive-level problems: malformed, unknown rule, or stale.
#[derive(Debug, Clone)]
pub struct DirectiveError {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the directive.
    pub line: usize,
    /// Failure class (drives the exit-code contract: any of these is
    /// exit code 2).
    pub kind: DirectiveKind,
    /// What is wrong with it.
    pub msg: String,
}

/// Per-file lint result.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Violations not covered by a directive.
    pub violations: Vec<Violation>,
    /// Violations waived by a directive.
    pub waived: Vec<Waived>,
    /// Problems with the directives themselves.
    pub directive_errors: Vec<DirectiveError>,
}

/// Cross-file context: float-typed `SimStats` fields discovered from
/// `stats.rs`, consumed by the accumulation half of rule L3.
#[derive(Debug, Clone, Default)]
pub struct LintContext {
    /// Names of `f32`/`f64` fields of `SimStats`.
    pub float_stats_fields: Vec<String>,
}

/// Extracts `(name, line)` of every `f32`/`f64` field of `struct SimStats`.
pub fn simstats_float_fields(lexed: &Lexed) -> Vec<(String, usize)> {
    let t = &lexed.tokens;
    let mut out = Vec::new();
    let Some(start) = t.windows(2).position(|w| {
        matches!(&w[0].kind, TokKind::Ident(s) if s == "struct")
            && matches!(&w[1].kind, TokKind::Ident(s) if s == "SimStats")
    }) else {
        return out;
    };
    let Some(open) = (start..t.len()).find(|&i| t[i].kind == TokKind::Open('{')) else {
        return out;
    };
    let mut i = open + 1;
    let mut depth = 1usize;
    // Walk `name : type ,` fields at depth 1, skipping `#[...]` attributes.
    while i < t.len() && depth > 0 {
        match &t[i].kind {
            TokKind::Open(_) => depth += 1,
            TokKind::Close(_) => depth -= 1,
            TokKind::Punct('#') if depth == 1 => {
                // Skip the attribute group.
                if let Some(Token {
                    kind: TokKind::Open('['),
                    ..
                }) = t.get(i + 1)
                {
                    let mut d = 1;
                    i += 2;
                    while i < t.len() && d > 0 {
                        match t[i].kind {
                            TokKind::Open(_) => d += 1,
                            TokKind::Close(_) => d -= 1,
                            _ => {}
                        }
                        i += 1;
                    }
                    continue;
                }
            }
            TokKind::Ident(name)
                if depth == 1
                    && name != "pub"
                    && matches!(t.get(i + 1).map(|n| &n.kind), Some(TokKind::Punct(':'))) =>
            {
                // Field declaration: scan its type up to the next `,` at
                // depth 1 (or the closing brace).
                let field_line = t[i].line;
                let field_name = name.clone();
                let mut j = i + 2;
                let mut d = depth;
                let mut angle = 0i32;
                let mut is_float = false;
                while j < t.len() {
                    match &t[j].kind {
                        TokKind::Open(_) => d += 1,
                        TokKind::Close(_) => {
                            if d == 1 {
                                break;
                            }
                            d -= 1;
                        }
                        TokKind::Punct('<') => angle += 1,
                        TokKind::Punct('>') => angle -= 1,
                        TokKind::Punct(',') if d == 1 && angle == 0 => break,
                        TokKind::Ident(ty) if ty == "f32" || ty == "f64" => is_float = true,
                        _ => {}
                    }
                    j += 1;
                }
                if is_float {
                    out.push((field_name, field_line));
                }
                i = j;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Lints one file's token stream under `scope`, resolving allow directives.
/// Flat token rules only; `analyze::analyze_file` adds the
/// function-scoped families on top and is what the CLI runs.
pub fn lint_file(rel: &str, lexed: &Lexed, scope: Scope, ctx: &LintContext) -> FileReport {
    let raw = collect_raw(rel, lexed, scope, ctx);
    resolve_directives(rel, lexed, raw)
}

/// Runs the flat token rules and returns the unresolved violations, so
/// callers can append function-scoped findings before directive
/// resolution (directives must see the union, or waivers for the new
/// rules would register as stale).
pub(crate) fn collect_raw(
    rel: &str,
    lexed: &Lexed,
    scope: Scope,
    ctx: &LintContext,
) -> Vec<Violation> {
    let mut raw: Vec<Violation> = Vec::new();
    if scope.hash_state {
        rule_default_hash_state(rel, lexed, &mut raw);
    }
    if scope.wall_clock {
        rule_wall_clock(rel, lexed, &mut raw);
    }
    if scope.float_fields {
        for (name, line) in simstats_float_fields(lexed) {
            raw.push(Violation {
                rule: "float-stats",
                file: rel.to_string(),
                line,
                msg: format!(
                    "float-typed `SimStats` field `{name}`; floats in stats risk \
                     non-associative accumulation — justify with an allow directive"
                ),
            });
        }
    }
    if scope.float_accum {
        rule_float_accum(rel, lexed, ctx, &mut raw);
    }
    if scope.pairing {
        rule_next_event_pairing(rel, lexed, &mut raw);
    }
    if scope.shard_state {
        rule_shard_shared_state(rel, lexed, &mut raw);
    }
    raw
}

/// Matches violations against directives; unused/unknown directives error.
pub(crate) fn resolve_directives(rel: &str, lexed: &Lexed, raw: Vec<Violation>) -> FileReport {
    let mut report = FileReport::default();
    for (line, msg) in &lexed.malformed {
        report.directive_errors.push(DirectiveError {
            file: rel.to_string(),
            line: *line,
            kind: DirectiveKind::Malformed,
            msg: msg.clone(),
        });
    }
    // A directive covers its own line (trailing comment) when code shares
    // it, otherwise the next line holding any token.
    let target_line = |d: &Directive| -> Option<usize> {
        if lexed.tokens.iter().any(|t| t.line == d.line) {
            return Some(d.line);
        }
        lexed
            .tokens
            .iter()
            .map(|t| t.line)
            .filter(|&l| l > d.line)
            .min()
    };
    let mut used = vec![false; lexed.directives.len()];
    for v in raw {
        let mut waived = false;
        for (di, d) in lexed.directives.iter().enumerate() {
            if d.rule == v.rule && target_line(d) == Some(v.line) {
                used[di] = true;
                waived = true;
                report.waived.push(Waived {
                    rule: v.rule,
                    file: v.file.clone(),
                    line: v.line,
                    reason: d.reason.clone(),
                });
                break;
            }
        }
        if !waived {
            report.violations.push(v);
        }
    }
    for (di, d) in lexed.directives.iter().enumerate() {
        if !RULE_NAMES.contains(&d.rule.as_str()) {
            report.directive_errors.push(DirectiveError {
                file: rel.to_string(),
                line: d.line,
                kind: DirectiveKind::UnknownRule,
                msg: format!(
                    "unknown rule `{}` in allow directive (known: {})",
                    d.rule,
                    RULE_NAMES.join(", ")
                ),
            });
        } else if !used[di] {
            report.directive_errors.push(DirectiveError {
                file: rel.to_string(),
                line: d.line,
                kind: DirectiveKind::Stale,
                msg: format!(
                    "stale/unused allow({}) directive — the waived violation no longer \
                     exists; delete the directive",
                    d.rule
                ),
            });
        }
    }
    report
}

/// L1: `HashMap`/`HashSet` without an explicit hasher, or `RandomState`.
fn rule_default_hash_state(rel: &str, lexed: &Lexed, out: &mut Vec<Violation>) {
    let t = &lexed.tokens;
    for i in 0..t.len() {
        let TokKind::Ident(name) = &t[i].kind else {
            continue;
        };
        match name.as_str() {
            "RandomState" => out.push(Violation {
                rule: "default-hash-state",
                file: rel.to_string(),
                line: t[i].line,
                msg: "`RandomState` is randomly seeded per process and breaks bit-identical \
                      replay; use `fxmap::FxHasher` or an ordered map"
                    .into(),
            }),
            "HashMap" | "HashSet" => {
                let need = if name == "HashMap" { 3 } else { 2 };
                if generic_arg_count(t, i + 1) < need {
                    out.push(Violation {
                        rule: "default-hash-state",
                        file: rel.to_string(),
                        line: t[i].line,
                        msg: format!(
                            "`{name}` with the default `RandomState` hasher — iteration order \
                             is nondeterministic; use `fxmap::Fx{name}` or `BTree{}`",
                            &name[4..]
                        ),
                    });
                }
            }
            _ => {}
        }
    }
}

/// Counts top-level generic arguments in a `<...>` (or turbofish `::<...>`)
/// starting at token index `i`; returns 0 when no generic list follows.
fn generic_arg_count(t: &[Token], mut i: usize) -> usize {
    if matches!(t.get(i).map(|x| &x.kind), Some(TokKind::Punct(':')))
        && matches!(t.get(i + 1).map(|x| &x.kind), Some(TokKind::Punct(':')))
        && matches!(t.get(i + 2).map(|x| &x.kind), Some(TokKind::Punct('<')))
    {
        i += 2;
    }
    if !matches!(t.get(i).map(|x| &x.kind), Some(TokKind::Punct('<'))) {
        return 0;
    }
    let mut angle = 1i32;
    let mut delim = 0i32;
    let mut args = 1usize;
    let mut j = i + 1;
    while j < t.len() && angle > 0 {
        match &t[j].kind {
            // `->` return arrows inside `Fn(..) -> T` bounds.
            TokKind::Punct('-')
                if matches!(t.get(j + 1).map(|x| &x.kind), Some(TokKind::Punct('>'))) =>
            {
                j += 1;
            }
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle -= 1,
            TokKind::Open(_) => delim += 1,
            TokKind::Close(_) => {
                if delim == 0 {
                    // `<` was a comparison, not a generic list.
                    return 0;
                }
                delim -= 1;
            }
            TokKind::Punct(';') if delim == 0 => return 0,
            TokKind::Punct(',') if angle == 1 && delim == 0 => args += 1,
            _ => {}
        }
        j += 1;
    }
    if angle > 0 {
        return 0;
    }
    args
}

/// L2: wall-clock types and ambient randomness.
fn rule_wall_clock(rel: &str, lexed: &Lexed, out: &mut Vec<Violation>) {
    let t = &lexed.tokens;
    for i in 0..t.len() {
        let TokKind::Ident(name) = &t[i].kind else {
            continue;
        };
        let msg = match name.as_str() {
            "Instant" | "SystemTime" => format!(
                "wall-clock `{name}` in simulator code — simulated `Cycle` time only \
                 (wall time belongs in harness/bench/telemetry::manifest)"
            ),
            "thread_rng" | "ThreadRng" => format!(
                "ambient randomness `{name}` — all randomness must come from a seeded RNG \
                 threaded through the config"
            ),
            "random"
                if i >= 3
                    && matches!(&t[i - 3].kind, TokKind::Ident(r) if r == "rand")
                    && t[i - 2].kind == TokKind::Punct(':')
                    && t[i - 1].kind == TokKind::Punct(':') =>
            {
                "ambient `rand::random` — all randomness must come from a seeded RNG".into()
            }
            "sleep"
                if i >= 3
                    && matches!(&t[i - 3].kind, TokKind::Ident(r) if r == "thread")
                    && t[i - 2].kind == TokKind::Punct(':')
                    && t[i - 1].kind == TokKind::Punct(':') =>
            {
                "`thread::sleep` in deterministic code — wall-clock delays belong in the \
                 harness; a sanctioned retry backoff needs an explicit waiver"
                    .into()
            }
            _ => continue,
        };
        out.push(Violation {
            rule: "wall-clock",
            file: rel.to_string(),
            line: t[i].line,
            msg,
        });
    }
}

/// L5: `static` items and shared-mutability primitives in `sim`.
///
/// The sharded engine's bit-identity proof rests on single ownership:
/// every mutable object belongs to exactly one lane (or the driver)
/// between barriers. A `static`, a `lazy_static!`/`thread_local!` cell,
/// a `OnceLock`/`OnceCell`/`LazyLock`, a lock (`Mutex`/`RwLock`), interior
/// mutability (`RefCell`) or shared ownership (`Rc`/`Arc`) all create
/// state whose visibility is scheduler-dependent, which this lint makes
/// impossible to introduce silently. `Atomic*` is deliberately *not*
/// flagged: scoped atomics owned by one `run_prologue` call are the
/// sanctioned cross-lane signalling mechanism.
fn rule_shard_shared_state(rel: &str, lexed: &Lexed, out: &mut Vec<Violation>) {
    let t = &lexed.tokens;
    for i in 0..t.len() {
        let TokKind::Ident(name) = &t[i].kind else {
            continue;
        };
        let msg = match name.as_str() {
            // A `static` item declaration: `static [mut] NAME :`. The
            // shape check keeps `'static` lifetimes (lexed as `Lifetime`,
            // never `Ident`) and prose out; requiring the `:` avoids
            // firing twice inside a flagged `thread_local!` body... which
            // would still be correct, just noisy.
            "static" => {
                let mut j = i + 1;
                if matches!(t.get(j).map(|x| &x.kind), Some(TokKind::Ident(m)) if m == "mut") {
                    j += 1;
                }
                let named = matches!(t.get(j).map(|x| &x.kind), Some(TokKind::Ident(_)));
                let typed = matches!(t.get(j + 1).map(|x| &x.kind), Some(TokKind::Punct(':')));
                if !(named && typed) {
                    continue;
                }
                "`static` item in simulator code — process-global state outlives the \
                 simulation and is visible across shard lanes; thread it through the \
                 owning component instead"
                    .to_string()
            }
            "lazy_static" | "thread_local" => format!(
                "`{name}!` in simulator code — lazily initialized global state breaks \
                 the one-owner-per-epoch model the sharded engine's bit-identity \
                 depends on"
            ),
            "OnceLock" | "OnceCell" | "LazyLock" => format!(
                "`{name}` in simulator code — write-once global cells still make \
                 initialization order observable across shard lanes; pass the value \
                 through the component that owns it"
            ),
            "Mutex" | "RwLock" => format!(
                "`{name}` in simulator code — lock acquisition order is scheduler- \
                 dependent, so anything guarded by it cannot replay bit-identically; \
                 partition the state per channel instead"
            ),
            "RefCell" => "`RefCell` in simulator code — interior mutability hides writes \
                 from the ownership structure the shard partition is derived from"
                .to_string(),
            "Rc" | "Arc" => format!(
                "`{name}` in simulator code — shared ownership lets two shard lanes \
                 alias the same mutable object; give the state a single owner and \
                 hand off through the epoch barrier"
            ),
            _ => continue,
        };
        out.push(Violation {
            rule: "shard-shared-state",
            file: rel.to_string(),
            line: t[i].line,
            msg,
        });
    }
}

/// L3 (use side): compound assignment into a float `SimStats` field.
fn rule_float_accum(rel: &str, lexed: &Lexed, ctx: &LintContext, out: &mut Vec<Violation>) {
    if ctx.float_stats_fields.is_empty() {
        return;
    }
    let t = &lexed.tokens;
    for i in 0..t.len() {
        if t[i].kind != TokKind::Punct('.') {
            continue;
        }
        let Some(TokKind::Ident(field)) = t.get(i + 1).map(|x| &x.kind) else {
            continue;
        };
        if !ctx.float_stats_fields.iter().any(|f| f == field) {
            continue;
        }
        let op = t.get(i + 2).map(|x| &x.kind);
        let eq = t.get(i + 3).map(|x| &x.kind);
        if matches!(op, Some(TokKind::Punct(c)) if matches!(c, '+' | '-' | '*' | '/'))
            && matches!(eq, Some(TokKind::Punct('=')))
        {
            out.push(Violation {
                rule: "float-stats",
                file: rel.to_string(),
                line: t[i + 1].line,
                msg: format!(
                    "float accumulation into `SimStats::{field}` — non-associative float \
                     addition drifts under reordering; accumulate integers and derive \
                     the float once at end of run"
                ),
            });
        }
    }
}

/// A function found at the top level of an inherent impl body.
#[derive(Debug)]
struct ImplFn {
    name: String,
    line: usize,
    /// `Some(true)` = `&self`, `Some(false)` = `&mut self`/`self`, `None` =
    /// no receiver (associated fn).
    shared_receiver: Option<bool>,
    /// Return type mentions `Option`.
    returns_option: bool,
}

/// L4: next_event/tick pairing in inherent impls, plus the `next_event`
/// signature contract (`&self` probe returning `Option<_>`).
fn rule_next_event_pairing(rel: &str, lexed: &Lexed, out: &mut Vec<Violation>) {
    let t = &lexed.tokens;
    for i in 0..t.len() {
        if !matches!(&t[i].kind, TokKind::Ident(s) if s == "impl") {
            continue;
        }
        // Skip type-position `impl Trait` (argument/return position): the
        // preceding token is then punctuation opening a type context.
        if i > 0 {
            match &t[i - 1].kind {
                TokKind::Punct(':' | ',' | '<' | '>' | '=' | '&') | TokKind::Open('(') => continue,
                TokKind::Ident(s) if s == "dyn" => continue,
                _ => {}
            }
        }
        // Header: up to the body `{` at delimiter depth 0.
        let mut j = i + 1;
        let mut is_trait_impl = false;
        let mut angle = 0i32;
        while j < t.len() {
            match &t[j].kind {
                TokKind::Punct('-')
                    if matches!(t.get(j + 1).map(|x| &x.kind), Some(TokKind::Punct('>'))) =>
                {
                    j += 1;
                }
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') => angle -= 1,
                TokKind::Ident(s) if s == "for" && angle == 0 => is_trait_impl = true,
                TokKind::Open('{') => break,
                TokKind::Punct(';') => break, // not an impl block after all
                _ => {}
            }
            j += 1;
        }
        if is_trait_impl || j >= t.len() || t[j].kind != TokKind::Open('{') {
            continue;
        }
        let type_name = header_type_name(&t[i + 1..j]);
        let fns = collect_impl_fns(t, j);
        let next_event = fns.iter().find(|f| f.name == "next_event");
        let tick = fns.iter().find(|f| f.name == "tick");
        match (next_event, tick) {
            (Some(ne), None) => out.push(Violation {
                rule: "next-event-pairing",
                file: rel.to_string(),
                line: ne.line,
                msg: format!(
                    "`{type_name}` implements the `next_event` fast-forward probe without \
                     its paired `tick` — the probe's promise must be dischargeable by a \
                     tick method in the same impl"
                ),
            }),
            (None, Some(tk)) => out.push(Violation {
                rule: "next-event-pairing",
                file: rel.to_string(),
                line: tk.line,
                msg: format!(
                    "`{type_name}` implements `tick` without a `next_event` probe — the \
                     component silently opts out of idle fast-forward, so a pending event \
                     inside it could be skipped over"
                ),
            }),
            _ => {}
        }
        if let Some(ne) = next_event {
            if ne.shared_receiver != Some(true) {
                out.push(Violation {
                    rule: "next-event-pairing",
                    file: rel.to_string(),
                    line: ne.line,
                    msg: format!(
                        "`{type_name}::next_event` must take `&self` — the probe is called \
                         speculatively and must be side-effect-free"
                    ),
                });
            }
            if !ne.returns_option {
                out.push(Violation {
                    rule: "next-event-pairing",
                    file: rel.to_string(),
                    line: ne.line,
                    msg: format!(
                        "`{type_name}::next_event` must return `Option<Cycle>` \
                         (`None` = component idle forever)"
                    ),
                });
            }
        }
    }
}

/// Best-effort self-type name from the impl header tokens.
fn header_type_name(header: &[Token]) -> String {
    let mut angle = 0i32;
    for tok in header {
        match &tok.kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle -= 1,
            TokKind::Ident(s) if angle == 0 && s != "unsafe" => return s.clone(),
            _ => {}
        }
    }
    "<unknown>".into()
}

/// Collects `fn` items at the top level of an impl body whose `{` is at
/// token index `open`.
fn collect_impl_fns(t: &[Token], open: usize) -> Vec<ImplFn> {
    let mut fns = Vec::new();
    let mut depth = 1i32;
    let mut i = open + 1;
    while i < t.len() && depth > 0 {
        match &t[i].kind {
            TokKind::Open(_) => depth += 1,
            TokKind::Close(_) => depth -= 1,
            TokKind::Ident(s) if s == "fn" && depth == 1 => {
                if let Some(TokKind::Ident(name)) = t.get(i + 1).map(|x| &x.kind) {
                    fns.push(parse_fn_sig(t, i + 1, name.clone()));
                }
            }
            _ => {}
        }
        i += 1;
    }
    fns
}

/// Parses receiver and return-type facts from a fn signature starting at
/// the name token.
fn parse_fn_sig(t: &[Token], name_idx: usize, name: String) -> ImplFn {
    let line = t[name_idx].line;
    let mut i = name_idx + 1;
    // Skip generics.
    if matches!(t.get(i).map(|x| &x.kind), Some(TokKind::Punct('<'))) {
        let mut angle = 1i32;
        i += 1;
        while i < t.len() && angle > 0 {
            match &t[i].kind {
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') => angle -= 1,
                _ => {}
            }
            i += 1;
        }
    }
    let mut shared_receiver = None;
    let mut returns_option = false;
    if matches!(t.get(i).map(|x| &x.kind), Some(TokKind::Open('('))) {
        // Receiver: the tokens before the first `,` at depth 1.
        let mut j = i + 1;
        let mut by_ref = false;
        let mut is_mut = false;
        let mut depth = 1i32;
        while j < t.len() && depth > 0 {
            match &t[j].kind {
                TokKind::Open(_) => depth += 1,
                TokKind::Close(_) => depth -= 1,
                TokKind::Punct(',') if depth == 1 => break,
                TokKind::Punct('&') => by_ref = true,
                TokKind::Ident(s) if s == "mut" => is_mut = true,
                TokKind::Ident(s) if s == "self" => {
                    shared_receiver = Some(by_ref && !is_mut);
                }
                _ => {}
            }
            j += 1;
        }
        // Find the params' closing paren, then the return type.
        let mut depth = 1i32;
        let mut k = i + 1;
        while k < t.len() && depth > 0 {
            match &t[k].kind {
                TokKind::Open(_) => depth += 1,
                TokKind::Close(_) => depth -= 1,
                _ => {}
            }
            k += 1;
        }
        if matches!(t.get(k).map(|x| &x.kind), Some(TokKind::Punct('-')))
            && matches!(t.get(k + 1).map(|x| &x.kind), Some(TokKind::Punct('>')))
        {
            let mut m = k + 2;
            while m < t.len() {
                match &t[m].kind {
                    TokKind::Open('{') | TokKind::Punct(';') => break,
                    TokKind::Ident(s) if s == "Option" => returns_option = true,
                    TokKind::Ident(s) if s == "where" => break,
                    _ => {}
                }
                m += 1;
            }
        }
    }
    ImplFn {
        name,
        line,
        shared_receiver,
        returns_option,
    }
}
