//! A small hand-rolled Rust lexer.
//!
//! The workspace is built offline against vendored dependency stubs, so
//! `syn`/`proc-macro2` are not available; like `vendor/serde_derive`, the
//! lint parses token streams by hand. The lexer produces a flat token
//! stream with line numbers — enough structure for the determinism rules,
//! which only need identifiers, punctuation, delimiter nesting, and the
//! `// lint: allow(...)` directives hidden in comments.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `impl`, `fn`, ...).
    Ident(String),
    /// A single punctuation character (`<`, `>`, `:`, `,`, ...).
    Punct(char),
    /// An opening delimiter: `(`, `[`, or `{`.
    Open(char),
    /// A closing delimiter: `)`, `]`, or `}`.
    Close(char),
    /// A literal (string, char, number). Contents are irrelevant to rules.
    Lit,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokKind,
    /// 1-based line number.
    pub line: usize,
}

/// A `// lint: allow(<rule>) reason=<text>` directive found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// The rule name inside `allow(...)`.
    pub rule: String,
    /// The mandatory free-text justification.
    pub reason: String,
    /// 1-based line the directive comment sits on.
    pub line: usize,
}

/// Lexer output: tokens, allow directives, and any malformed directives.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Well-formed allow directives.
    pub directives: Vec<Directive>,
    /// `(line, message)` for comments that look like directives but do not
    /// parse — these are hard errors so typos cannot silently disable a rule.
    pub malformed: Vec<(usize, String)>,
}

/// Lexes `src`. Never fails: unrecognized bytes are skipped (the source is
/// already known to compile, so this only matters for fixtures).
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let b = src.as_bytes();
    let mut i = 0;
    let mut line = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                scan_comment(&src[start..i], line, &mut out);
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Nested block comment; count newlines as we go.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                out.tokens.push(Token {
                    kind: TokKind::Lit,
                    line,
                });
                i = skip_string(b, i, &mut line);
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                out.tokens.push(Token {
                    kind: TokKind::Lit,
                    line,
                });
                i = skip_raw_or_byte_string(b, i, &mut line);
            }
            b'\'' => {
                let (kind, next) = lex_quote(b, i, &mut line);
                out.tokens.push(Token { kind, line });
                i = next;
            }
            c if c.is_ascii_digit() => {
                out.tokens.push(Token {
                    kind: TokKind::Lit,
                    line,
                });
                i += 1;
                // Greedy number scan; `0x1f`, `1_000u64`, `1.5e-3` all pass.
                // `.` is excluded so `0..n` ranges lex as Lit Punct Punct Lit.
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident(src[start..i].to_string()),
                    line,
                });
            }
            b'(' | b'[' | b'{' => {
                out.tokens.push(Token {
                    kind: TokKind::Open(c as char),
                    line,
                });
                i += 1;
            }
            b')' | b']' | b'}' => {
                out.tokens.push(Token {
                    kind: TokKind::Close(c as char),
                    line,
                });
                i += 1;
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokKind::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `rb` is not Rust.
fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if b.get(j) == Some(&b'r') {
        j += 1;
        while b.get(j) == Some(&b'#') {
            j += 1;
        }
    }
    b.get(j) == Some(&b'"') && j > i
}

fn skip_raw_or_byte_string(b: &[u8], mut i: usize, line: &mut usize) -> usize {
    if b[i] == b'b' {
        i += 1;
    }
    let raw = b.get(i) == Some(&b'r');
    if raw {
        i += 1;
    }
    let mut hashes = 0;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(b.get(i), Some(&b'"'));
    if raw {
        i += 1; // opening quote
        loop {
            match b.get(i) {
                None => return i,
                Some(b'\n') => *line += 1,
                Some(b'"') => {
                    let mut j = i + 1;
                    let mut seen = 0;
                    while seen < hashes && b.get(j) == Some(&b'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        return j;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    } else {
        skip_string(b, i, line)
    }
}

/// Skips a `"..."` string starting at the opening quote; returns the index
/// just past the closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut usize) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => {
                // A `\<newline>` line continuation still ends a source
                // line; missing it would shift every later token's line.
                if b.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Disambiguates `'a'` (char literal) from `'a` (lifetime) at a `'`.
fn lex_quote(b: &[u8], i: usize, line: &mut usize) -> (TokKind, usize) {
    let next = b.get(i + 1).copied();
    match next {
        Some(b'\\') => {
            // Escaped char literal: scan to the closing quote.
            let mut j = i + 2;
            while j < b.len() {
                match b[j] {
                    b'\\' => j += 2,
                    b'\'' => return (TokKind::Lit, j + 1),
                    _ => j += 1,
                }
            }
            (TokKind::Lit, j)
        }
        Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
            // Ident run after the quote: `'a'` closes immediately after one
            // char (literal); otherwise it is a lifetime.
            let mut j = i + 1;
            while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                j += 1;
            }
            if b.get(j) == Some(&b'\'') && j == i + 2 {
                (TokKind::Lit, j + 1)
            } else {
                (TokKind::Lifetime, j)
            }
        }
        Some(b'\n') => {
            // `'\n'` never reaches here (escape handled above); a bare
            // newline after a quote is not valid Rust. Consume the quote.
            *line += 1;
            (TokKind::Punct('\''), i + 1)
        }
        Some(_) => {
            // `'x'` where x is punctuation/digit: a char literal.
            let mut j = i + 1;
            while j < b.len() && b[j] != b'\'' && b[j] != b'\n' {
                j += 1;
            }
            if b.get(j) == Some(&b'\'') {
                (TokKind::Lit, j + 1)
            } else {
                (TokKind::Punct('\''), i + 1)
            }
        }
        None => (TokKind::Punct('\''), i + 1),
    }
}

/// Parses `// lint: allow(<rule>) reason=<text>` out of a line comment.
/// Comments that start with `// lint:` but do not match the grammar are
/// recorded as malformed so a typo cannot silently disable a rule.
fn scan_comment(text: &str, line: usize, out: &mut Lexed) {
    let body = text.trim_start_matches('/').trim();
    let Some(rest) = body.strip_prefix("lint:") else {
        return;
    };
    let rest = rest.trim();
    let parse = || -> Option<Directive> {
        let rest = rest.strip_prefix("allow(")?;
        let close = rest.find(')')?;
        let rule = rest[..close].trim();
        if rule.is_empty() || !rule.bytes().all(|c| c.is_ascii_alphanumeric() || c == b'-') {
            return None;
        }
        let tail = rest[close + 1..].trim();
        let reason = tail.strip_prefix("reason=")?.trim();
        if reason.is_empty() {
            return None;
        }
        Some(Directive {
            rule: rule.to_string(),
            reason: reason.to_string(),
            line,
        })
    };
    match parse() {
        Some(d) => out.directives.push(d),
        None => out.malformed.push((
            line,
            format!(
                "malformed lint directive `{body}`; expected `lint: allow(<rule>) reason=<text>`"
            ),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn idents_and_lines() {
        let l = lex("fn main() {\n  let x = 1;\n}\n");
        assert_eq!(
            idents("fn main() {\n  let x = 1;\n}\n"),
            ["fn", "main", "let", "x"]
        );
        let x = l
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Ident("x".into()))
            .expect("x");
        assert_eq!(x.line, 2);
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        // `HashMap` in a string, a line comment, and a block comment must
        // not surface as identifiers.
        let src = r##"
            let s = "HashMap<RandomState>";
            // HashMap here is commentary
            /* HashMap /* nested */ still comment */
            let r = r#"HashMap "quoted" inside raw"#;
            let b = b"HashMap";
        "##;
        assert!(!idents(src).iter().any(|i| i == "HashMap"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let lits = l.tokens.iter().filter(|t| t.kind == TokKind::Lit).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(lits, 1);
    }

    #[test]
    fn directive_parses() {
        let l =
            lex("// lint: allow(default-hash-state) reason=explicit hasher via alias\nlet x = 1;");
        assert_eq!(l.directives.len(), 1);
        assert_eq!(l.directives[0].rule, "default-hash-state");
        assert_eq!(l.directives[0].reason, "explicit hasher via alias");
        assert_eq!(l.directives[0].line, 1);
        assert!(l.malformed.is_empty());
    }

    #[test]
    fn malformed_directive_is_reported() {
        let l = lex("// lint: allow(no-such syntax\n// lint: allow(rule-x)\n");
        assert_eq!(
            l.malformed.len(),
            2,
            "missing close paren and missing reason"
        );
        assert!(l.directives.is_empty());
    }

    #[test]
    fn multiline_string_tracks_lines() {
        let l = lex("let s = \"a\nb\nc\";\nlet y = 0;");
        let y = l
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Ident("y".into()))
            .expect("y");
        assert_eq!(y.line, 4);
    }

    fn line_of(l: &Lexed, name: &str) -> usize {
        l.tokens
            .iter()
            .find(|t| t.kind == TokKind::Ident(name.into()))
            .unwrap_or_else(|| panic!("ident {name}"))
            .line
    }

    #[test]
    fn string_line_continuation_tracks_lines() {
        // A trailing `\` before a newline continues the string but still
        // ends a source line; every token after it must not drift.
        let l = lex("let s = \"first \\\n    second\";\nlet y = 0;");
        assert_eq!(line_of(&l, "y"), 3);
    }

    #[test]
    fn raw_string_hashes_and_lines() {
        // `r##"..."##` may contain `"#` without closing; embedded
        // newlines count toward line numbers.
        let src = "let r = r##\"has \"# inside\nand a newline\"##;\nlet y = 0;";
        let l = lex(src);
        assert_eq!(line_of(&l, "y"), 3);
        assert!(!l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident("inside".into())));
    }

    #[test]
    fn byte_strings_are_single_literals() {
        let l = lex("let b1 = b\"bytes\"; let b2 = br#\"raw bytes\"#; let y = 0;");
        assert!(!l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident("bytes".into())));
        assert_eq!(line_of(&l, "y"), 1);
    }

    #[test]
    fn nested_block_comments_track_lines() {
        let l = lex("/* outer\n /* inner */\n still outer */\nlet y = 0;");
        assert_eq!(line_of(&l, "y"), 4);
        assert!(!l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident("outer".into())));
    }

    #[test]
    fn lifetime_corner_cases() {
        // `'_` and `'static` are lifetimes; an escaped `'\''` is a char
        // literal; `b'x'` lexes as Ident(b) + char Lit (the `b` prefix is
        // not glued, which is fine for rule purposes — no rule keys on a
        // literal's value).
        let l = lex("fn f<'a>(x: &'_ u8) -> &'static str { let c = '\\''; let b = b'x'; \"s\" }");
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 3, "'a, '_, 'static");
        let lits = l.tokens.iter().filter(|t| t.kind == TokKind::Lit).count();
        assert_eq!(lits, 3, "two char literals and one string; u8 is an ident");
    }
}
