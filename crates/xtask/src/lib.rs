//! `cargo xtask lint` — repo-specific determinism lints for the CacheCraft
//! workspace.
//!
//! The evaluation methodology rests on bit-identical `SimStats` (the
//! golden-regression corpus and the threads-1-vs-8 determinism test), so
//! the simulator crates must not depend on randomized hash iteration
//! order, wall-clock time, ambient randomness, or float accumulation.
//! Clippy cannot express those rules; this tool lexes the workspace with a
//! small hand-rolled lexer (the build is offline, so `syn` is not
//! available — see `vendor/README.md`) and enforces them. See
//! [`rules`] for the rule list and `DESIGN.md` ("Determinism contract &
//! invariants") for the rationale.
//!
//! Run it as `cargo xtask lint`. Exit status is non-zero when any
//! violation, malformed directive, or stale allow-list entry is found.

pub mod lexer;
pub mod rules;

use rules::{DirectiveError, FileReport, LintContext, Violation, Waived};
use std::fs;
use std::path::{Path, PathBuf};

/// The crates scanned by the lint (workspace-relative source roots).
pub const SCANNED_ROOTS: [&str; 5] = [
    "crates/sim/src",
    "crates/core/src",
    "crates/ecc/src",
    "crates/workloads/src",
    "crates/telemetry/src",
];

/// Aggregated result of linting the whole workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// All violations, ordered by file then line.
    pub violations: Vec<Violation>,
    /// All waived violations (the verified allow-list).
    pub waived: Vec<Waived>,
    /// Directive problems (malformed / unknown rule / unused).
    pub directive_errors: Vec<DirectiveError>,
}

impl LintReport {
    /// `true` when the tree is clean (waived entries are fine).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.directive_errors.is_empty()
    }

    fn absorb(&mut self, fr: FileReport) {
        self.violations.extend(fr.violations);
        self.waived.extend(fr.waived);
        self.directive_errors.extend(fr.directive_errors);
    }
}

/// Lints the workspace rooted at `root`. Errors are I/O-level only; lint
/// findings are reported in the returned [`LintReport`].
pub fn lint_workspace(root: &Path) -> Result<LintReport, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    for sub in SCANNED_ROOTS {
        let dir = root.join(sub);
        if !dir.is_dir() {
            return Err(format!("missing source root {}", dir.display()));
        }
        collect_rs(&dir, &mut files)?;
    }
    files.sort();

    // Pass 1: discover float SimStats fields for the accumulation rule.
    let stats_path = root.join(rules::SIMSTATS_PATH);
    let ctx = match fs::read_to_string(&stats_path) {
        Ok(src) => LintContext {
            float_stats_fields: rules::simstats_float_fields(&lexer::lex(&src))
                .into_iter()
                .map(|(name, _)| name)
                .collect(),
        },
        Err(e) => return Err(format!("read {}: {e}", stats_path.display())),
    };

    // Pass 2: lint every file under its path-derived scope.
    let mut report = LintReport::default();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .map_err(|_| format!("{} escapes workspace root", path.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let lexed = lexer::lex(&src);
        report.absorb(rules::lint_file(&rel, &lexed, rules::scope_for(&rel), &ctx));
        report.files_scanned += 1;
    }
    let key = |f: &String, l: &usize| (f.clone(), *l);
    report.violations.sort_by_key(|v| key(&v.file, &v.line));
    report.waived.sort_by_key(|w| key(&w.file, &w.line));
    report
        .directive_errors
        .sort_by_key(|d| key(&d.file, &d.line));
    Ok(report)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Renders the report in the summary-table format shown by `cargo xtask
/// lint`.
pub fn render(report: &LintReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "xtask lint: scanned {} files under {}",
        report.files_scanned,
        SCANNED_ROOTS.join(", ")
    );
    if !report.waived.is_empty() {
        let _ = writeln!(s, "\nallow-listed ({} verified):", report.waived.len());
        let width = report
            .waived
            .iter()
            .map(|w| w.file.len() + 1 + w.line.to_string().len())
            .max()
            .unwrap_or(0);
        for w in &report.waived {
            let loc = format!("{}:{}", w.file, w.line);
            let _ = writeln!(s, "  {:20} {loc:width$}  {}", w.rule, w.reason);
        }
    }
    if !report.violations.is_empty() {
        let _ = writeln!(s, "\nviolations ({}):", report.violations.len());
        for v in &report.violations {
            let _ = writeln!(s, "  {:20} {}:{}  {}", v.rule, v.file, v.line, v.msg);
        }
    }
    if !report.directive_errors.is_empty() {
        let _ = writeln!(s, "\ndirective errors ({}):", report.directive_errors.len());
        for d in &report.directive_errors {
            let _ = writeln!(s, "  {}:{}  {}", d.file, d.line, d.msg);
        }
    }
    let _ = writeln!(
        s,
        "\n{}",
        if report.is_clean() {
            "clean: determinism contract holds"
        } else {
            "FAILED: determinism contract violated (fix or justify with \
             `// lint: allow(<rule>) reason=...`)"
        }
    );
    s
}
