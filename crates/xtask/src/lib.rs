//! `cargo xtask analyze` — repo-specific static analysis for the
//! CacheCraft workspace.
//!
//! The evaluation methodology rests on bit-identical `SimStats` (the
//! golden-regression corpus and the threads-1-vs-8 determinism test), so
//! the simulator crates must not depend on randomized hash iteration
//! order, wall-clock time, ambient randomness, or float accumulation —
//! and the crash-resilience story rests on panic-free cycle loops,
//! disciplined atomics, and never-discarded persistence `Result`s.
//! Clippy cannot express those rules; this tool lexes the workspace with
//! a small hand-rolled lexer (the build is offline, so `syn` is not
//! available — see `vendor/README.md`), layers a brace-aware scope map
//! over it ([`scopes`]) and enforces them. See [`rules`] and [`analyze`]
//! for the rule catalog and `DESIGN.md` §16 ("Static-analysis suite")
//! for the rationale.
//!
//! Run it as `cargo xtask analyze` (`lint` is a compatibility alias for
//! the same full suite). Exit codes: 0 clean, 1 rule violations, 2
//! directive errors (malformed, unknown-rule, or stale waivers) — see
//! [`exit_code`].

pub mod analyze;
pub mod lexer;
pub mod rules;
pub mod scopes;

use analyze::AnalyzeContext;
use rules::{DirectiveError, FileReport, LintContext, Violation, Waived};
use std::fs;
use std::path::{Path, PathBuf};

/// The crates scanned by the analyzer (workspace-relative source roots).
pub const SCANNED_ROOTS: [&str; 7] = [
    "crates/sim/src",
    "crates/core/src",
    "crates/ecc/src",
    "crates/workloads/src",
    "crates/telemetry/src",
    "crates/harness/src",
    "crates/serve/src",
];

/// Aggregated result of analyzing the whole workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// All violations, ordered by file then line.
    pub violations: Vec<Violation>,
    /// All waived violations (the verified allow-list).
    pub waived: Vec<Waived>,
    /// Directive problems (malformed / unknown rule / stale).
    pub directive_errors: Vec<DirectiveError>,
}

impl LintReport {
    /// `true` when the tree is clean (waived entries are fine).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.directive_errors.is_empty()
    }

    fn absorb(&mut self, fr: FileReport) {
        self.violations.extend(fr.violations);
        self.waived.extend(fr.waived);
        self.directive_errors.extend(fr.directive_errors);
    }
}

/// The process exit code contract: 0 clean, 1 violations, 2 directive
/// errors. Directive errors dominate — a rotten waiver inventory makes
/// every other verdict untrustworthy, so it gets the louder code.
pub fn exit_code(report: &LintReport) -> i32 {
    if !report.directive_errors.is_empty() {
        2
    } else if !report.violations.is_empty() {
        1
    } else {
        0
    }
}

/// Workspace file list + cross-file analysis context, shared by
/// [`lint_workspace`] and [`analyze_workspace`].
struct WorkspaceFiles {
    /// `(workspace-relative path, source, lexed)` for every scanned file.
    files: Vec<(String, String, lexer::Lexed)>,
    ctx: LintContext,
}

fn load_workspace(root: &Path) -> Result<WorkspaceFiles, String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for sub in SCANNED_ROOTS {
        let dir = root.join(sub);
        if !dir.is_dir() {
            return Err(format!("missing source root {}", dir.display()));
        }
        collect_rs(&dir, &mut paths)?;
    }
    paths.sort();

    // Pass 1: discover float SimStats fields for the accumulation rule.
    let stats_path = root.join(rules::SIMSTATS_PATH);
    let ctx = match fs::read_to_string(&stats_path) {
        Ok(src) => LintContext {
            float_stats_fields: rules::simstats_float_fields(&lexer::lex(&src))
                .into_iter()
                .map(|(name, _)| name)
                .collect(),
        },
        Err(e) => return Err(format!("read {}: {e}", stats_path.display())),
    };

    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        let rel = path
            .strip_prefix(root)
            .map_err(|_| format!("{} escapes workspace root", path.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let lexed = lexer::lex(&src);
        files.push((rel, src, lexed));
    }
    Ok(WorkspaceFiles { files, ctx })
}

/// Runs the full analysis suite — the flat token rules plus the
/// function-scoped families (panic-freedom, atomic-discipline,
/// fallible-result) — on the workspace rooted at `root`.
pub fn analyze_workspace(root: &Path) -> Result<LintReport, String> {
    let ws = load_workspace(root)?;

    // Cross-file context: the cycle-loop call graph over crates/sim, and
    // the Result-returning exports of the persistence modules.
    let sim_files: Vec<(&str, &lexer::Lexed)> = ws
        .files
        .iter()
        .filter(|(rel, _, _)| rel.starts_with("crates/sim/src/"))
        .map(|(rel, _, lexed)| (rel.as_str(), lexed))
        .collect();
    let mut actx = AnalyzeContext {
        lint: ws.ctx.clone(),
        fallible_fns: Default::default(),
        hot: analyze::hot_spans(&sim_files),
    };
    for (rel, _, lexed) in &ws.files {
        let module = rel
            .rsplit('/')
            .next()
            .and_then(|f| f.strip_suffix(".rs"))
            .unwrap_or("");
        if analyze::FALLIBLE_MODULES.contains(&module) {
            let map = scopes::ScopeMap::scan(lexed);
            actx.fallible_fns
                .extend(analyze::fallible_fn_names(lexed, &map));
        }
    }

    let mut report = LintReport::default();
    for (rel, _, lexed) in &ws.files {
        report.absorb(analyze::analyze_file(
            rel,
            lexed,
            rules::scope_for(rel),
            &actx,
        ));
        report.files_scanned += 1;
    }
    sort_report(&mut report);
    Ok(report)
}

fn sort_report(report: &mut LintReport) {
    let key = |f: &String, l: &usize| (f.clone(), *l);
    report.violations.sort_by_key(|v| key(&v.file, &v.line));
    report.waived.sort_by_key(|w| key(&w.file, &w.line));
    report
        .directive_errors
        .sort_by_key(|d| key(&d.file, &d.line));
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Renders the report in the summary-table format shown by `cargo xtask
/// analyze`.
pub fn render(report: &LintReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "xtask analyze: scanned {} files under {}",
        report.files_scanned,
        SCANNED_ROOTS.join(", ")
    );
    if !report.waived.is_empty() {
        let _ = writeln!(s, "\nallow-listed ({} verified):", report.waived.len());
        let width = report
            .waived
            .iter()
            .map(|w| w.file.len() + 1 + w.line.to_string().len())
            .max()
            .unwrap_or(0);
        for w in &report.waived {
            let loc = format!("{}:{}", w.file, w.line);
            let _ = writeln!(s, "  {:20} {loc:width$}  {}", w.rule, w.reason);
        }
    }
    if !report.violations.is_empty() {
        let _ = writeln!(s, "\nviolations ({}):", report.violations.len());
        for v in &report.violations {
            let _ = writeln!(s, "  {:20} {}:{}  {}", v.rule, v.file, v.line, v.msg);
        }
    }
    if !report.directive_errors.is_empty() {
        let _ = writeln!(s, "\ndirective errors ({}):", report.directive_errors.len());
        for d in &report.directive_errors {
            let _ = writeln!(s, "  {}:{}  {}", d.file, d.line, d.msg);
        }
    }
    let _ = writeln!(
        s,
        "\n{}",
        if report.is_clean() {
            "clean: determinism contract holds"
        } else {
            "FAILED: determinism contract violated (fix or justify with \
             `// lint: allow(<rule>) reason=...`)"
        }
    );
    s
}

/// Renders violations and directive errors as GitHub workflow commands
/// (`::error file=…,line=…::…`) so CI annotates the diff in place.
pub fn render_github(report: &LintReport) -> String {
    use std::fmt::Write as _;
    let esc = |s: &str| {
        s.replace('%', "%25")
            .replace('\r', "%0D")
            .replace('\n', "%0A")
    };
    let mut s = String::new();
    for v in &report.violations {
        let _ = writeln!(
            s,
            "::error file={},line={},title=xtask {}::{}",
            v.file,
            v.line,
            v.rule,
            esc(&v.msg)
        );
    }
    for d in &report.directive_errors {
        let _ = writeln!(
            s,
            "::error file={},line={},title=xtask directive::{}",
            d.file,
            d.line,
            esc(&d.msg)
        );
    }
    let _ = writeln!(
        s,
        "xtask analyze: {} files, {} violations, {} waived, {} directive errors",
        report.files_scanned,
        report.violations.len(),
        report.waived.len(),
        report.directive_errors.len()
    );
    s
}

/// Renders the honoured-waiver inventory, one `file:line rule reason`
/// per line, sorted by file then line (`--list-waivers`).
pub fn render_waivers(report: &LintReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for w in &report.waived {
        let _ = writeln!(s, "{}:{} {} {}", w.file, w.line, w.rule, w.reason);
    }
    s
}
