//! CLI entry point: `cargo xtask lint [--root <path>]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("usage: cargo xtask lint [--root <workspace-root>]");
        return ExitCode::from(2);
    };
    if cmd != "lint" {
        eprintln!("unknown xtask `{cmd}` (available: lint)");
        return ExitCode::from(2);
    }
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    // Default to the workspace root this binary was built from, so the
    // lint works no matter where `cargo xtask` is invoked.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .components()
            .collect()
    });
    match xtask::lint_workspace(&root) {
        Ok(report) => {
            print!("{}", xtask::render(&report));
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::from(2)
        }
    }
}
