//! CLI entry point:
//! `cargo xtask analyze [--root <path>] [--format text|github] [--list-waivers]`.
//!
//! `lint` is a compatibility alias for `analyze` — both run the full
//! suite (flat token rules + function-scoped families).
//!
//! Exit codes (see DESIGN.md §16): 0 = clean, 1 = rule violations,
//! 2 = directive errors (malformed / unknown-rule / stale waiver) or
//! invocation errors. Directive errors dominate violations.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "usage: cargo xtask analyze [--root <workspace-root>] [--format text|github] [--list-waivers]";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if cmd != "analyze" && cmd != "lint" {
        eprintln!("unknown xtask `{cmd}` (available: analyze, lint)");
        return ExitCode::from(2);
    }
    let mut root: Option<PathBuf> = None;
    let mut format = String::from("text");
    let mut list_waivers = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some(f @ ("text" | "github")) => format = f.to_string(),
                Some(other) => {
                    eprintln!("unknown format `{other}` (available: text, github)");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("--format requires a value (text, github)");
                    return ExitCode::from(2);
                }
            },
            "--list-waivers" => list_waivers = true,
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    // Default to the workspace root this binary was built from, so the
    // analysis works no matter where `cargo xtask` is invoked.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .components()
            .collect()
    });
    match xtask::analyze_workspace(&root) {
        Ok(report) => {
            if list_waivers {
                print!("{}", xtask::render_waivers(&report));
            } else if format == "github" {
                print!("{}", xtask::render_github(&report));
            } else {
                print!("{}", xtask::render(&report));
            }
            ExitCode::from(xtask::exit_code(&report) as u8)
        }
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            ExitCode::from(2)
        }
    }
}
