//! Brace-aware scope layer on top of the flat lexer.
//!
//! The token-level rules in [`crate::rules`] treat a file as one flat
//! stream, which is enough for "this identifier is banned here" checks
//! but not for rules that must reason about *which function* code lives
//! in: panic-freedom applies only to the cycle-loop call graph,
//! atomic-discipline reports the function a mis-ordered load sits in,
//! and fallible-result discipline must ignore `#[cfg(test)]` modules.
//!
//! This module derives that structure with a single pass over the token
//! stream: a stack of brace frames classified as `mod`, `impl`/`trait`,
//! `fn`, or anonymous block, with item attributes (`#[cfg(test)]`)
//! captured and inherited downward. No external parser — the build is
//! offline (see `vendor/README.md`), so like the lexer this is
//! hand-rolled and deliberately approximate: it only needs to be right
//! about the constructs this workspace actually uses, and every rule
//! riding on it is pinned by fixtures.

use crate::lexer::{Lexed, TokKind, Token};
use std::collections::BTreeSet;
use std::ops::Range;

/// One `fn` item discovered in the file, with its token extent.
#[derive(Debug, Clone)]
pub struct FnScope {
    /// The function's name.
    pub name: String,
    /// Self type of the enclosing inherent or trait impl (or the trait
    /// name for default bodies), when there is one.
    pub self_type: Option<String>,
    /// Enclosing module names, outermost first (`[]` at file top level).
    pub mod_path: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token range of the signature: `[fn keyword, body `{`)`.
    pub sig: Range<usize>,
    /// Token range strictly inside the body braces.
    pub body: Range<usize>,
    /// Inside a `#[cfg(test)]` item (directly or inherited from an
    /// enclosing module): exempt from the analysis rules.
    pub cfg_test: bool,
}

impl FnScope {
    /// `"Type::name"` or bare `"name"`, for diagnostics.
    pub fn qualified(&self) -> String {
        match &self.self_type {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// All functions of one file, in source order.
#[derive(Debug, Default)]
pub struct ScopeMap {
    /// Every `fn` item (including nested fns and trait-impl methods;
    /// closures are anonymous and excluded).
    pub fns: Vec<FnScope>,
}

impl ScopeMap {
    /// The innermost function whose extent contains token index `idx`.
    pub fn enclosing(&self, idx: usize) -> Option<&FnScope> {
        self.fns
            .iter()
            .filter(|f| f.sig.start <= idx && idx < f.body.end)
            .max_by_key(|f| f.sig.start)
    }

    /// Scans a lexed file into its scope map.
    pub fn scan(lexed: &Lexed) -> ScopeMap {
        Scanner::default().run(&lexed.tokens)
    }
}

/// What a `{` opened.
#[derive(Debug)]
enum FrameKind {
    Mod(String),
    Impl(String),
    Fn(usize),
    Block,
}

#[derive(Debug)]
struct Frame {
    kind: FrameKind,
    /// Effective test-gating at this frame (own attr or inherited).
    cfg_test: bool,
}

#[derive(Default)]
struct Scanner {
    frames: Vec<Frame>,
    fns: Vec<FnScope>,
    /// `#[cfg(test)]` seen among the attributes of the upcoming item.
    pending_cfg_test: bool,
    /// Classification for the next `{` (set by `mod`/`impl`/`fn`
    /// headers; `None` means anonymous block).
    pending_open: Option<(FrameKind, bool)>,
    /// Nesting inside `(...)`/`[...]` groups: a `;` in an array type
    /// (`[u32; 2]`) must not be mistaken for an item-ending semicolon.
    delim: i32,
}

impl Scanner {
    fn inherited_cfg_test(&self) -> bool {
        self.frames.last().is_some_and(|f| f.cfg_test)
    }

    fn innermost_impl(&self) -> Option<String> {
        self.frames.iter().rev().find_map(|f| match &f.kind {
            FrameKind::Impl(ty) => Some(ty.clone()),
            _ => None,
        })
    }

    fn mod_path(&self) -> Vec<String> {
        self.frames
            .iter()
            .filter_map(|f| match &f.kind {
                FrameKind::Mod(name) => Some(name.clone()),
                _ => None,
            })
            .collect()
    }

    fn run(mut self, t: &[Token]) -> ScopeMap {
        let mut i = 0;
        while i < t.len() {
            match &t[i].kind {
                // Outer attribute `#[...]`: harvest idents for cfg(test).
                // Inner attributes `#![...]` are skipped without effect.
                TokKind::Punct('#') => {
                    let inner = matches!(t.get(i + 1).map(|x| &x.kind), Some(TokKind::Punct('!')));
                    let open = if inner { i + 2 } else { i + 1 };
                    if matches!(t.get(open).map(|x| &x.kind), Some(TokKind::Open('['))) {
                        let mut depth = 1usize;
                        let mut j = open + 1;
                        let mut saw_cfg = false;
                        let mut saw_test = false;
                        while j < t.len() && depth > 0 {
                            match &t[j].kind {
                                TokKind::Open(_) => depth += 1,
                                TokKind::Close(_) => depth -= 1,
                                TokKind::Ident(s) if s == "cfg" => saw_cfg = true,
                                TokKind::Ident(s) if s == "test" => saw_test = true,
                                _ => {}
                            }
                            j += 1;
                        }
                        if !inner && saw_cfg && saw_test {
                            self.pending_cfg_test = true;
                        }
                        i = j;
                        continue;
                    }
                }
                TokKind::Ident(kw) if kw == "mod" => {
                    if let Some(TokKind::Ident(name)) = t.get(i + 1).map(|x| &x.kind) {
                        // `mod name ;` declares an external file — no frame.
                        if matches!(t.get(i + 2).map(|x| &x.kind), Some(TokKind::Open('{'))) {
                            let test = self.pending_cfg_test || self.inherited_cfg_test();
                            self.pending_open = Some((FrameKind::Mod(name.clone()), test));
                        }
                    }
                    self.pending_cfg_test = false;
                }
                TokKind::Ident(kw) if kw == "impl" || kw == "trait" => {
                    if self.impl_header(t, i, kw == "trait") {
                        // pending_open set; cfg(test) inheritance only.
                    }
                    self.pending_cfg_test = false;
                }
                TokKind::Ident(kw) if kw == "fn" => {
                    if let Some(TokKind::Ident(name)) = t.get(i + 1).map(|x| &x.kind) {
                        // `fn(` is a fn-pointer type, not an item.
                        let test = self.pending_cfg_test || self.inherited_cfg_test();
                        self.fns.push(FnScope {
                            name: name.clone(),
                            self_type: self.innermost_impl(),
                            mod_path: self.mod_path(),
                            line: t[i].line,
                            sig: i..i, // end patched at body open
                            body: 0..0,
                            cfg_test: test,
                        });
                        self.pending_open = Some((FrameKind::Fn(self.fns.len() - 1), test));
                    }
                    self.pending_cfg_test = false;
                }
                TokKind::Ident(kw)
                    if matches!(
                        kw.as_str(),
                        "struct" | "enum" | "use" | "static" | "const" | "type" | "macro_rules"
                    ) =>
                {
                    self.pending_cfg_test = false;
                }
                TokKind::Open('(' | '[') => self.delim += 1,
                TokKind::Close(')' | ']') => self.delim -= 1,
                TokKind::Punct(';') if self.delim == 0 => {
                    // A top-level `;` before the pending `{` means the
                    // item had no body after all (e.g. a trait method
                    // declaration).
                    if let Some((FrameKind::Fn(idx), _)) = &self.pending_open {
                        let idx = *idx;
                        // Signature-only: keep it with an empty body.
                        self.fns[idx].sig = self.fns[idx].sig.start..i;
                    }
                    self.pending_open = None;
                }
                TokKind::Open('{') => {
                    let (kind, test) = self
                        .pending_open
                        .take()
                        .unwrap_or((FrameKind::Block, self.inherited_cfg_test()));
                    if let FrameKind::Fn(idx) = kind {
                        self.fns[idx].sig = self.fns[idx].sig.start..i;
                        self.fns[idx].body = (i + 1)..(i + 1);
                    }
                    self.frames.push(Frame {
                        kind,
                        cfg_test: test,
                    });
                }
                TokKind::Close('}') => {
                    if let Some(frame) = self.frames.pop() {
                        if let FrameKind::Fn(idx) = frame.kind {
                            self.fns[idx].body = self.fns[idx].body.start..i;
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
        ScopeMap { fns: self.fns }
    }

    /// Classifies an `impl`/`trait` header starting at token `i`,
    /// setting `pending_open` for its body brace. Returns false for
    /// type-position `impl Trait`, which opens no scope.
    fn impl_header(&mut self, t: &[Token], i: usize, is_trait: bool) -> bool {
        if i > 0 {
            match &t[i - 1].kind {
                // `fn f(x: impl Fn())`, `-> impl Iterator`, `&impl T`, ...
                TokKind::Punct(':' | ',' | '<' | '>' | '=' | '&' | '+') | TokKind::Open('(') => {
                    return false;
                }
                TokKind::Ident(s) if s == "dyn" => return false,
                _ => {}
            }
        }
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut first_ty: Option<String> = None;
        let mut for_ty: Option<String> = None;
        let mut after_for = false;
        while j < t.len() {
            match &t[j].kind {
                TokKind::Punct('-')
                    if matches!(t.get(j + 1).map(|x| &x.kind), Some(TokKind::Punct('>'))) =>
                {
                    j += 1;
                }
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') => angle -= 1,
                TokKind::Ident(s) if s == "for" && angle == 0 => after_for = true,
                TokKind::Ident(s) if s == "where" && angle == 0 => {}
                TokKind::Ident(s) if angle == 0 && s != "unsafe" && s != "pub" => {
                    if after_for {
                        for_ty.get_or_insert_with(|| s.clone());
                    } else {
                        first_ty.get_or_insert_with(|| s.clone());
                    }
                }
                TokKind::Open('{') => {
                    let ty = for_ty
                        .or(first_ty)
                        .unwrap_or_else(|| "<unknown>".to_string());
                    let test = self.pending_cfg_test || self.inherited_cfg_test();
                    let _ = is_trait;
                    self.pending_open = Some((FrameKind::Impl(ty), test));
                    return true;
                }
                TokKind::Punct(';') => return false,
                _ => {}
            }
            j += 1;
        }
        false
    }
}

/// Rust keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: [&str; 9] = [
    "if", "while", "for", "match", "loop", "return", "move", "fn", "unsafe",
];

/// Collects the names invoked inside a body token range: free and path
/// calls (`name(...)`, `module::name(...)`) and method calls
/// (`.name(...)`). Macro invocations (`name!(...)`) are *not* calls —
/// their argument tokens are still in the stream, so calls inside them
/// are seen. This is a name-level over-approximation: resolving `x.tick()`
/// to every `fn tick` in the crate is deliberate — reachability built on
/// it can only over-include, never silently drop a hot function.
pub fn called_names(tokens: &[Token], body: &Range<usize>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for i in body.clone() {
        let TokKind::Ident(name) = &tokens[i].kind else {
            continue;
        };
        if CALL_KEYWORDS.contains(&name.as_str()) {
            continue;
        }
        if matches!(tokens.get(i + 1).map(|x| &x.kind), Some(TokKind::Open('('))) {
            out.insert(name.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan(src: &str) -> ScopeMap {
        ScopeMap::scan(&lex(src))
    }

    #[test]
    fn finds_free_and_impl_fns() {
        let m = scan(
            "fn free() { body(); }\n\
             struct S;\n\
             impl S { fn method(&self) -> u32 { 1 } }\n\
             impl Clone for S { fn clone(&self) -> S { S } }\n",
        );
        let names: Vec<String> = m.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(names, ["free", "S::method", "S::clone"]);
        assert_eq!(m.fns[0].line, 1);
    }

    #[test]
    fn mod_nesting_and_cfg_test_inheritance() {
        let m = scan(
            "mod outer {\n\
               fn a() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
                 fn b() {}\n\
                 impl T { fn c(&self) {} }\n\
               }\n\
             }\n\
             #[cfg(test)]\n\
             fn d() {}\n\
             fn e() {}\n",
        );
        let by_name = |n: &str| m.fns.iter().find(|f| f.name == n).expect("fn");
        assert!(!by_name("a").cfg_test);
        assert_eq!(by_name("a").mod_path, ["outer"]);
        assert!(by_name("b").cfg_test);
        assert_eq!(by_name("b").mod_path, ["outer", "tests"]);
        assert!(by_name("c").cfg_test, "impl inside test mod inherits");
        assert!(by_name("d").cfg_test);
        assert!(!by_name("e").cfg_test, "cfg(test) does not leak forward");
    }

    #[test]
    fn array_type_semicolon_does_not_end_the_item() {
        // The `;` inside `[u32; 2]` (param or return position) is part of
        // an array type, not an item terminator: the fn keeps its body.
        let m =
            scan("fn split(v: &[u32]) -> [u32; 2] { [v[0], v[1]] }\nfn sig_only(x: [u8; 4]);\n");
        assert_eq!(m.fns.len(), 2);
        assert!(!m.fns[0].body.is_empty(), "split must have a body");
        assert!(m.fns[1].body.is_empty(), "sig_only is signature-only");
    }

    #[test]
    fn trait_impl_self_type_is_the_for_type() {
        let m = scan("impl<T: Clone> Scheme for Memory<T> { fn tick(&mut self) {} }");
        assert_eq!(m.fns[0].qualified(), "Memory::tick");
    }

    #[test]
    fn body_ranges_cover_exactly_the_braces() {
        let src = "fn f() { inner(); } fn g() {}";
        let lexed = lex(src);
        let m = ScopeMap::scan(&lexed);
        let f = &m.fns[0];
        let inner: Vec<&TokKind> = lexed.tokens[f.body.clone()]
            .iter()
            .map(|t| &t.kind)
            .collect();
        assert_eq!(
            inner,
            [
                &TokKind::Ident("inner".into()),
                &TokKind::Open('('),
                &TokKind::Close(')'),
                &TokKind::Punct(';')
            ]
        );
        assert!(m.fns[1].body.is_empty());
    }

    #[test]
    fn type_position_impl_opens_no_scope() {
        let m = scan("fn f(x: impl Fn() -> u8) -> impl Iterator<Item = u8> { g() }");
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].name, "f");
    }

    #[test]
    fn trait_method_declaration_without_body() {
        let m = scan("trait T { fn decl(&self); fn with_default(&self) { x() } }");
        let names: Vec<String> = m.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(names, ["T::decl", "T::with_default"]);
        assert!(m.fns[0].body.is_empty());
        assert!(!m.fns[1].body.is_empty());
    }

    #[test]
    fn called_names_sees_through_macros_and_methods() {
        let src = "fn f() { free(); x.method(); path::qualified(); assert!(check(y)); }";
        let lexed = lex(src);
        let m = ScopeMap::scan(&lexed);
        let calls = called_names(&lexed.tokens, &m.fns[0].body);
        for n in ["free", "method", "qualified", "check"] {
            assert!(calls.contains(n), "missing {n}: {calls:?}");
        }
        assert!(!calls.contains("assert"), "macros are not calls");
    }

    #[test]
    fn enclosing_picks_the_innermost_fn() {
        let src = "fn outer() { fn inner() { deep(); } inner(); }";
        let lexed = lex(src);
        let m = ScopeMap::scan(&lexed);
        let deep_idx = lexed
            .tokens
            .iter()
            .position(|t| t.kind == TokKind::Ident("deep".into()))
            .expect("deep");
        assert_eq!(m.enclosing(deep_idx).expect("fn").name, "inner");
    }
}
