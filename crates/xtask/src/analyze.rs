//! The function-scoped analysis rules (`cargo xtask analyze`).
//!
//! Three rule families ride on the [`crate::scopes`] layer, extending
//! the flat token rules of [`crate::rules`]:
//!
//! * `panic-freedom` (A1) — inside the cycle-loop call graph of
//!   `crates/sim` (every function reachable, by name, from
//!   [`PF_ROOTS`]), flag the constructs that can abort a simulation
//!   mid-corpus: `.unwrap()` / `.expect(...)` residue, `[...]` indexing
//!   with a computed (arithmetic) index, slice patterns
//!   (`let [a, b] = ...`, `[..] =>`), and unchecked `-` / `*` between
//!   cycle/address-named values (underflow panics in debug builds — the
//!   builds the golden corpus and CI run — and silently wraps in
//!   release). Intentional invariant panics stay, waived with a reason
//!   naming the guard that makes them unreachable.
//! * `atomic-discipline` (A2) — in `crates/sim`, every `Atomic*`
//!   load/store/RMW must name an explicit `Ordering` literal,
//!   `Relaxed` is legal only on the counters in [`RELAXED_COUNTERS`]
//!   (the lane drain ring, whose visibility is sequenced by the
//!   `progress` watermark), and publish/consume fields must form
//!   Acquire/Release pairs: a `Release` store with no `Acquire` load of
//!   the same field (or vice versa) is a broken protocol, as is a
//!   plain-ordering site on a field the other side accesses with
//!   acquire/release semantics.
//! * `fallible-result` (A3) — in `crates/harness` and `crates/serve`,
//!   discarding the `Result` of a call into the durable-persistence
//!   layer (`store::`, `checkpoint::`, `cellcache::`, or any function
//!   those modules export that returns `Result`) with `let _ = ...` or
//!   a bare statement is an error: a swallowed store failure silently
//!   un-does the crash-resilience contract of DESIGN.md §14.
//!
//! The fourth family, stale-waiver detection, lives in the directive
//! resolver ([`crate::rules`]): every `lint: allow` that no longer
//! suppresses a violation is a [`DirectiveKind::Stale`] hard error with
//! its own exit code, so waivers cannot rot.
//!
//! [`DirectiveKind::Stale`]: crate::rules::DirectiveKind::Stale

use crate::lexer::{Lexed, TokKind, Token};
use crate::rules::{self, FileReport, LintContext, Scope, Violation};
use crate::scopes::{called_names, ScopeMap};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::ops::Range;

/// Root functions of the cycle-loop call graph in `crates/sim`. Every
/// function reachable from these by name is "hot" for `panic-freedom`.
pub const PF_ROOTS: [&str; 4] = ["simulate_with_exec", "run_prologue", "tick", "next_event"];

/// Identifier names treated as cycle/address arithmetic operands by the
/// unchecked-subtraction/multiplication check of `panic-freedom`.
pub const PF_CYCLE_IDENTS: [&str; 19] = [
    "addr",
    "address",
    "arrival",
    "base",
    "c",
    "cycle",
    "deadline",
    "end",
    "epoch",
    "epoch_start",
    "horizon",
    "lat",
    "latency",
    "now",
    "slot",
    "start",
    "stride",
    "t",
    "wake",
];

/// Atomic fields on which `Ordering::Relaxed` is sanctioned: per-cycle
/// counters whose visibility is sequenced by an Acquire/Release
/// watermark (`LaneShared::drains`, ordered by `progress`).
pub const RELAXED_COUNTERS: [&str; 1] = ["drains"];

/// Persistence modules whose `Result`s must never be discarded.
pub const FALLIBLE_MODULES: [&str; 3] = ["store", "checkpoint", "cellcache"];

/// Atomic method names checked by `atomic-discipline`.
const ATOMIC_METHODS: [&str; 13] = [
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

const ORDERING_NAMES: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Cross-file context for the analysis rules, built once per workspace
/// scan (see `analyze_workspace`).
#[derive(Debug, Clone, Default)]
pub struct AnalyzeContext {
    /// Context for the flat token rules (float `SimStats` fields).
    pub lint: LintContext,
    /// Names of `Result`-returning functions exported by the
    /// persistence modules, harvested by [`fallible_fn_names`].
    pub fallible_fns: BTreeSet<String>,
    /// Per-file (workspace-relative path → body token ranges) extent of
    /// the cycle-loop call graph, computed by [`hot_spans`].
    pub hot: BTreeMap<String, Vec<Range<usize>>>,
}

impl AnalyzeContext {
    /// Context treating `rel`/`lexed` as a complete single-file crate:
    /// the call graph is seeded from [`PF_ROOTS`] found in the file
    /// itself. Used by fixtures; the workspace scan builds the real one.
    pub fn single_file(rel: &str, lexed: &Lexed, lint: LintContext) -> AnalyzeContext {
        AnalyzeContext {
            lint,
            fallible_fns: BTreeSet::new(),
            hot: hot_spans(&[(rel, lexed)]),
        }
    }
}

/// Computes the cycle-loop call graph over the given `crates/sim` files:
/// seeds at [`PF_ROOTS`], then follows call *names* (free, path and
/// method calls) transitively. Name-level resolution over-approximates —
/// `x.tick()` marks every `fn tick` in the crate hot — which is the safe
/// direction: a hot function can never silently fall out of scope.
/// `#[cfg(test)]` functions are never hot.
pub fn hot_spans(files: &[(&str, &Lexed)]) -> BTreeMap<String, Vec<Range<usize>>> {
    let maps: Vec<ScopeMap> = files.iter().map(|(_, l)| ScopeMap::scan(l)).collect();
    let mut by_name: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for (fi, m) in maps.iter().enumerate() {
        for (ni, f) in m.fns.iter().enumerate() {
            if !f.cfg_test {
                by_name.entry(f.name.as_str()).or_default().push((fi, ni));
            }
        }
    }
    let mut visited: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
    for root in PF_ROOTS {
        for &node in by_name.get(root).into_iter().flatten() {
            if visited.insert(node) {
                queue.push_back(node);
            }
        }
    }
    while let Some((fi, ni)) = queue.pop_front() {
        let body = maps[fi].fns[ni].body.clone();
        for name in called_names(&files[fi].1.tokens, &body) {
            for &node in by_name.get(name.as_str()).into_iter().flatten() {
                if visited.insert(node) {
                    queue.push_back(node);
                }
            }
        }
    }
    let mut out: BTreeMap<String, Vec<Range<usize>>> = BTreeMap::new();
    for (fi, ni) in visited {
        out.entry(files[fi].0.to_string())
            .or_default()
            .push(maps[fi].fns[ni].body.clone());
    }
    for spans in out.values_mut() {
        spans.sort_by_key(|r| r.start);
    }
    out
}

/// Harvests the names of non-test `Result`-returning functions from a
/// lexed persistence module, for the `fallible-result` call-site check.
pub fn fallible_fn_names(lexed: &Lexed, map: &ScopeMap) -> BTreeSet<String> {
    map.fns
        .iter()
        .filter(|f| !f.cfg_test && returns_result(&lexed.tokens, &f.sig))
        .map(|f| f.name.clone())
        .collect()
}

fn returns_result(t: &[Token], sig: &Range<usize>) -> bool {
    let mut i = sig.start;
    // Skip past the parameter list so `impl FnMut() -> Result<..>`
    // bounds in argument position do not count as the return type.
    let mut depth = 0i32;
    let mut seen_params = false;
    while i < sig.end {
        match &t[i].kind {
            TokKind::Open('(') => {
                depth += 1;
                seen_params = true;
            }
            TokKind::Close(')') => depth -= 1,
            _ => {}
        }
        i += 1;
        if seen_params && depth == 0 {
            break;
        }
    }
    while i + 1 < sig.end {
        if t[i].kind == TokKind::Punct('-') && t[i + 1].kind == TokKind::Punct('>') {
            return t[i + 2..sig.end]
                .iter()
                .any(|tok| matches!(&tok.kind, TokKind::Ident(s) if s == "Result"));
        }
        i += 1;
    }
    false
}

/// Runs the full rule suite (flat + function-scoped) on one file and
/// resolves its waiver directives. This is `analyze`'s per-file unit;
/// `lint_file` remains the flat-rules-only subset.
pub fn analyze_file(rel: &str, lexed: &Lexed, scope: Scope, ctx: &AnalyzeContext) -> FileReport {
    let mut raw = rules::collect_raw(rel, lexed, scope, &ctx.lint);
    let map = ScopeMap::scan(lexed);
    if scope.panic_freedom {
        rule_panic_freedom(rel, lexed, ctx, &mut raw);
    }
    if scope.atomic_discipline {
        rule_atomic_discipline(rel, lexed, &map, &mut raw);
    }
    if scope.fallible_result {
        rule_fallible_result(rel, lexed, &map, ctx, &mut raw);
    }
    raw.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    rules::resolve_directives(rel, lexed, raw)
}

/// A1: panic vectors inside the cycle-loop call graph.
fn rule_panic_freedom(rel: &str, lexed: &Lexed, ctx: &AnalyzeContext, out: &mut Vec<Violation>) {
    let Some(spans) = ctx.hot.get(rel) else {
        return;
    };
    let t = &lexed.tokens;
    let push = |out: &mut Vec<Violation>, line: usize, msg: String| {
        out.push(Violation {
            rule: "panic-freedom",
            file: rel.to_string(),
            line,
            msg,
        });
    };
    for span in spans {
        for i in span.clone() {
            match &t[i].kind {
                TokKind::Ident(n) if n == "unwrap" || n == "expect" => {
                    let method = i > 0
                        && t[i - 1].kind == TokKind::Punct('.')
                        && matches!(t.get(i + 1).map(|x| &x.kind), Some(TokKind::Open('(')));
                    if method {
                        push(
                            out,
                            t[i].line,
                            format!(
                                "`.{n}(...)` on the hot path — a panic here aborts the cell \
                                 mid-corpus; restructure to make the failure impossible, or \
                                 waive with the invariant that guarantees `Some`/`Ok`"
                            ),
                        );
                    }
                }
                TokKind::Open('[') if is_index_position(t, i) => {
                    if let Some(op) = computed_index_op(t, i, span.end) {
                        push(
                            out,
                            t[i].line,
                            format!(
                                "computed index `[.. {op} ..]` on the hot path — an \
                                 out-of-range result panics; bound-check it, use `get`, or \
                                 waive with the invariant that keeps it in range"
                            ),
                        );
                    }
                }
                TokKind::Ident(n) if n == "let" => {
                    if matches!(t.get(i + 1).map(|x| &x.kind), Some(TokKind::Open('['))) {
                        push(
                            out,
                            t[i].line,
                            "slice pattern in `let` on the hot path — refutable length \
                             panics; destructure with `get`/`split_first` or waive with the \
                             invariant fixing the length"
                                .into(),
                        );
                    }
                }
                TokKind::Close(']')
                    if matches!(t.get(i + 1).map(|x| &x.kind), Some(TokKind::Punct('=')))
                        && matches!(t.get(i + 2).map(|x| &x.kind), Some(TokKind::Punct('>'))) =>
                {
                    push(
                        out,
                        t[i].line,
                        "slice pattern in match arm on the hot path — cover the length \
                         mismatch arm explicitly or waive with the invariant fixing the \
                         length"
                            .into(),
                    );
                }
                TokKind::Punct(op @ ('-' | '*')) => {
                    if let Some((l, r)) = cycle_arith_operands(t, i) {
                        push(
                            out,
                            t[i].line,
                            format!(
                                "unchecked `{l} {op} {r}` on cycle/address values — underflow \
                                 or overflow panics in debug (the build the golden corpus \
                                 runs) and wraps in release; use `saturating_/checked_` or \
                                 waive with the guard that orders the operands"
                            ),
                        );
                    }
                }
                _ => {}
            }
        }
    }
}

/// Is the `[` at `i` in expression position (indexing/slicing), as
/// opposed to an array literal, attribute, or type?
fn is_index_position(t: &[Token], i: usize) -> bool {
    i > 0
        && matches!(
            t[i - 1].kind,
            TokKind::Ident(_) | TokKind::Close(')') | TokKind::Close(']')
        )
}

/// Returns the first top-level *binary* arithmetic operator inside the
/// bracket group opening at `i`, if any. Unary forms (`[*i]` deref,
/// `[-1]` negation) are not arithmetic: the operator only counts when
/// the preceding token can end an operand.
fn computed_index_op(t: &[Token], i: usize, limit: usize) -> Option<char> {
    let mut depth = 1i32;
    let mut j = i + 1;
    while j < t.len() && j < limit && depth > 0 {
        match &t[j].kind {
            TokKind::Open(_) => depth += 1,
            TokKind::Close(_) => depth -= 1,
            TokKind::Punct(op @ ('+' | '-' | '*')) if depth == 1 => {
                let binary = matches!(
                    t[j - 1].kind,
                    TokKind::Ident(_) | TokKind::Lit | TokKind::Close(_)
                );
                // `->` inside an index can only appear in closures; skip.
                let arrow = matches!(t.get(j + 1).map(|x| &x.kind), Some(TokKind::Punct('>')));
                if binary && !arrow {
                    return Some(*op);
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// For a binary `-`/`*` at `i`, the (left, right) operand identifiers
/// when both are simple ident/field chains naming cycle/address values.
fn cycle_arith_operands(t: &[Token], i: usize) -> Option<(String, String)> {
    // Not `->`, `-=`, `*=`, and not unary (left operand must be an ident).
    if matches!(
        t.get(i + 1).map(|x| &x.kind),
        Some(TokKind::Punct('>') | TokKind::Punct('='))
    ) {
        return None;
    }
    let TokKind::Ident(left) = &t.get(i.wrapping_sub(1))?.kind else {
        return None;
    };
    // Right operand: last identifier of an `a.b.c` chain.
    let mut j = i + 1;
    let TokKind::Ident(first) = &t.get(j)?.kind else {
        return None;
    };
    let mut right: &str = first;
    while matches!(t.get(j + 1).map(|x| &x.kind), Some(TokKind::Punct('.'))) {
        match t.get(j + 2).map(|x| &x.kind) {
            Some(TokKind::Ident(f)) => {
                right = f;
                j += 2;
            }
            _ => break,
        }
    }
    // A chain ending in a call is a method result, not a named value.
    if matches!(t.get(j + 1).map(|x| &x.kind), Some(TokKind::Open('('))) {
        return None;
    }
    let hot = |s: &str| PF_CYCLE_IDENTS.contains(&s);
    if hot(left) && hot(right) {
        Some((left.clone(), right.to_string()))
    } else {
        None
    }
}

/// One atomic operation site found in a file.
struct AtomicSite {
    field: String,
    method: &'static str,
    orderings: Vec<&'static str>,
    line: usize,
    idx: usize,
}

/// A2: explicit orderings, the Relaxed allowlist, and publish/consume
/// pairing.
fn rule_atomic_discipline(rel: &str, lexed: &Lexed, map: &ScopeMap, out: &mut Vec<Violation>) {
    let t = &lexed.tokens;
    let mut sites: Vec<AtomicSite> = Vec::new();
    for i in 0..t.len() {
        let TokKind::Ident(name) = &t[i].kind else {
            continue;
        };
        let Some(&method) = ATOMIC_METHODS.iter().find(|m| *m == name) else {
            continue;
        };
        if i == 0
            || t[i - 1].kind != TokKind::Punct('.')
            || !matches!(t.get(i + 1).map(|x| &x.kind), Some(TokKind::Open('(')))
        {
            continue;
        }
        if map.enclosing(i).is_some_and(|f| f.cfg_test) {
            continue;
        }
        let field = receiver_field(t, i - 1).unwrap_or_else(|| "<receiver>".to_string());
        let mut orderings: Vec<&'static str> = Vec::new();
        let mut depth = 1i32;
        let mut j = i + 2;
        while j < t.len() && depth > 0 {
            match &t[j].kind {
                TokKind::Open(_) => depth += 1,
                TokKind::Close(_) => depth -= 1,
                TokKind::Ident(s) => {
                    if let Some(&o) = ORDERING_NAMES.iter().find(|o| *o == s) {
                        orderings.push(o);
                    }
                }
                _ => {}
            }
            j += 1;
        }
        sites.push(AtomicSite {
            field,
            method,
            orderings,
            line: t[i].line,
            idx: i,
        });
    }

    let in_fn = |map: &ScopeMap, idx: usize| -> String {
        map.enclosing(idx)
            .map(|f| format!(" (in `{}`)", f.qualified()))
            .unwrap_or_default()
    };
    let mut push = |idx: usize, line: usize, msg: String| {
        out.push(Violation {
            rule: "atomic-discipline",
            file: rel.to_string(),
            line,
            msg: format!("{msg}{}", in_fn(map, idx)),
        });
    };

    // Per-site checks (one violation max per site: missing ordering
    // dominates, then the Relaxed allowlist, then pairing).
    let allow_relaxed = |f: &str| RELAXED_COUNTERS.contains(&f);
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    for s in &sites {
        if s.orderings.is_empty() {
            flagged.insert(s.idx);
            push(
                s.idx,
                s.line,
                format!(
                    "atomic `{}` on `{}` without an explicit `Ordering` literal — the \
                     ordering must be visible at the call site, not computed",
                    s.method, s.field
                ),
            );
        } else if s.orderings.contains(&"Relaxed") && !allow_relaxed(&s.field) {
            flagged.insert(s.idx);
            push(
                s.idx,
                s.line,
                format!(
                    "`Ordering::Relaxed` on `{}` — Relaxed is sanctioned only for the \
                     allowlisted counters ({}); publish/consume fields need \
                     Release/Acquire",
                    s.field,
                    RELAXED_COUNTERS.join(", ")
                ),
            );
        }
    }

    // Pairing: group by receiver field, skipping allowlisted counters.
    let mut fields: BTreeSet<&str> = sites
        .iter()
        .map(|s| s.field.as_str())
        .filter(|f| !allow_relaxed(f))
        .collect();
    fields.remove("<receiver>");
    for field in fields {
        let of_field: Vec<&AtomicSite> = sites.iter().filter(|s| s.field == field).collect();
        let loads: Vec<&&AtomicSite> = of_field.iter().filter(|s| s.method == "load").collect();
        let stores: Vec<&&AtomicSite> = of_field.iter().filter(|s| s.method != "load").collect();
        let releasing = |s: &AtomicSite| {
            s.orderings
                .iter()
                .any(|o| matches!(*o, "Release" | "AcqRel" | "SeqCst"))
        };
        let acquiring = |s: &AtomicSite| {
            s.orderings
                .iter()
                .any(|o| matches!(*o, "Acquire" | "AcqRel" | "SeqCst"))
        };
        if !loads.is_empty() && !stores.is_empty() {
            for s in &stores {
                if !releasing(s) && !flagged.contains(&s.idx) {
                    push(
                        s.idx,
                        s.line,
                        format!(
                            "`{}` on `{field}` must publish with `Release` (or stronger) — \
                             the field is consumed by `load`s elsewhere in this file",
                            s.method
                        ),
                    );
                }
            }
            for s in &loads {
                if !acquiring(s) && !flagged.contains(&s.idx) {
                    push(
                        s.idx,
                        s.line,
                        format!(
                            "`load` on `{field}` must consume with `Acquire` (or stronger) — \
                             the field is published by `store`s elsewhere in this file"
                        ),
                    );
                }
            }
        } else if loads.is_empty() {
            if let Some(s) = stores.iter().find(|s| releasing(s)) {
                push(
                    s.idx,
                    s.line,
                    format!(
                        "`Release` publish on `{field}` with no `Acquire` consumer in this \
                         file — a one-sided protocol synchronizes nothing"
                    ),
                );
            }
        } else if let Some(s) = loads.iter().find(|s| acquiring(s)) {
            push(
                s.idx,
                s.line,
                format!(
                    "`Acquire` consume on `{field}` with no publisher in this file — a \
                     one-sided protocol synchronizes nothing"
                ),
            );
        }
    }
}

/// The field name an atomic method is invoked on: the identifier (or
/// `ident[...]` base) immediately before the method's `.` at `dot`.
fn receiver_field(t: &[Token], dot: usize) -> Option<String> {
    let before = dot.checked_sub(1)?;
    match &t[before].kind {
        TokKind::Ident(name) => Some(name.clone()),
        TokKind::Close(']') => {
            let mut depth = 1i32;
            let mut j = before;
            while j > 0 && depth > 0 {
                j -= 1;
                match &t[j].kind {
                    TokKind::Close(_) => depth += 1,
                    TokKind::Open(_) => depth -= 1,
                    _ => {}
                }
            }
            match (j > 0).then(|| &t[j - 1].kind) {
                Some(TokKind::Ident(name)) => Some(name.clone()),
                _ => None,
            }
        }
        _ => None,
    }
}

/// A3: discarded `Result`s from the persistence layer.
fn rule_fallible_result(
    rel: &str,
    lexed: &Lexed,
    map: &ScopeMap,
    ctx: &AnalyzeContext,
    out: &mut Vec<Violation>,
) {
    let t = &lexed.tokens;
    for i in 0..t.len() {
        let TokKind::Ident(name) = &t[i].kind else {
            continue;
        };
        if !matches!(t.get(i + 1).map(|x| &x.kind), Some(TokKind::Open('('))) {
            continue;
        }
        if !ctx.fallible_fns.contains(name.as_str()) {
            continue;
        }
        if map.enclosing(i).is_some_and(|f| f.cfg_test) {
            continue;
        }
        let method_call = i > 0 && t[i - 1].kind == TokKind::Punct('.');
        // Walk back to the expression start: over a `receiver.field.`
        // chain for method calls, or a `mod::path::` qualifier
        // (remembering the innermost qualifying module) otherwise.
        let mut start = i;
        let mut qualifier: Option<&str> = None;
        if method_call {
            while start >= 2
                && t[start - 1].kind == TokKind::Punct('.')
                && matches!(t[start - 2].kind, TokKind::Ident(_))
            {
                start -= 2;
            }
        }
        while start >= 3
            && t[start - 1].kind == TokKind::Punct(':')
            && t[start - 2].kind == TokKind::Punct(':')
        {
            match &t[start - 3].kind {
                TokKind::Ident(m) => {
                    qualifier.get_or_insert(m.as_str());
                    start -= 3;
                }
                _ => break,
            }
        }
        if let Some(q) = qualifier {
            // Qualified by a foreign module/type (e.g. `File::open`):
            // out of scope for this rule.
            if !FALLIBLE_MODULES.contains(&q) && q != "crate" && q != "self" && q != "super" {
                continue;
            }
        }
        let display = if let Some(q) = qualifier {
            format!("{q}::{name}")
        } else {
            name.clone()
        };
        // `let _ = ...` silences the compiler's must_use check; flag it
        // for persistence calls in any call form.
        let let_discard = start >= 3
            && t[start - 1].kind == TokKind::Punct('=')
            && matches!(&t[start - 2].kind, TokKind::Ident(u) if u == "_")
            && matches!(&t[start - 3].kind, TokKind::Ident(l) if l == "let");
        // Bare `call(...);` in statement position (free/path calls only:
        // method receivers make the statement start ambiguous, and rustc's
        // `must_use` already rejects bare method discards).
        let stmt_discard = !method_call
            && !let_discard
            && (start == 0
                || matches!(
                    t[start - 1].kind,
                    TokKind::Punct(';') | TokKind::Open('{') | TokKind::Close('}')
                ))
            && {
                let mut depth = 1i32;
                let mut j = i + 2;
                while j < t.len() && depth > 0 {
                    match &t[j].kind {
                        TokKind::Open(_) => depth += 1,
                        TokKind::Close(_) => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                matches!(t.get(j).map(|x| &x.kind), Some(TokKind::Punct(';')))
            };
        if let_discard || stmt_discard {
            let how = if let_discard {
                "`let _ =`"
            } else {
                "a bare statement"
            };
            out.push(Violation {
                rule: "fallible-result",
                file: rel.to_string(),
                line: t[i].line,
                msg: format!(
                    "`Result` of `{display}` discarded with {how} — a swallowed \
                     persistence failure breaks the durability contract (DESIGN.md §14); \
                     handle it, propagate it, or waive with the reason the failure is \
                     benign"
                ),
            });
        }
    }
}
