//! End-to-end fault-injection and crash-resilience acceptance.
//!
//! Covers this PR's criteria at the facade level:
//! * in-situ injection is observational — rate 0 (and injection disabled)
//!   leaves `SimStats` bit-identical, and any rate leaves timing and
//!   traffic untouched;
//! * injected faults flow through each scheme's real stored codec:
//!   CacheCraft's RS(36,32) corrects whole-symbol (chip) errors that
//!   SEC-DED baselines can only detect or miss;
//! * a panicking matrix cell is reported as a failed cell while the rest
//!   of the matrix completes;
//! * a checkpoint written by an interrupted run resumes through
//!   `results/checkpoint.json` with only unfinished cells executing.

use cachecraft::harness::checkpoint::{self, Session};
use cachecraft::harness::runner::{run_matrix, CellStatus, ExpOptions};
use cachecraft::schemes::cachecraft::CacheCraftConfig;
use cachecraft::schemes::factory::{run_scheme, run_scheme_instrumented, SchemeKind};
use cachecraft::sim::config::GpuConfig;
use cachecraft::sim::faults::FaultConfig;
use cachecraft::telemetry::TelemetryConfig;
use cachecraft::workloads::{SizeClass, Workload};

#[test]
fn rate_zero_injection_is_bit_identical() {
    let cfg = GpuConfig::tiny();
    let trace = Workload::Spmv.generate(SizeClass::Tiny, 1);
    let kind = SchemeKind::CacheCraft(CacheCraftConfig::for_machine(&cfg));
    let plain = run_scheme(&cfg, kind, &trace);
    let fc = FaultConfig::parse("symbol:0").expect("valid spec");
    let zero = run_scheme_instrumented(&cfg, kind, &trace, &TelemetryConfig::disabled(), Some(&fc));
    let mut stats = zero.stats.clone();
    let faults = stats.faults.take().expect("fault stats attached");
    assert_eq!(faults.injected, 0, "rate 0 must inject nothing");
    assert_eq!(stats, plain, "rate-0 injection must not perturb the run");
}

#[test]
fn injection_never_perturbs_timing() {
    let cfg = GpuConfig::tiny();
    let trace = Workload::Transpose.generate(SizeClass::Tiny, 2);
    let kind = SchemeKind::InlineNaive { coverage: 8 };
    let plain = run_scheme(&cfg, kind, &trace);
    let fc = FaultConfig::parse("bit2:1.0").expect("valid spec");
    let hot = run_scheme_instrumented(&cfg, kind, &trace, &TelemetryConfig::disabled(), Some(&fc));
    let mut stats = hot.stats.clone();
    let faults = stats.faults.take().expect("fault stats attached");
    assert!(faults.injected > 0, "p=1.0 must inject");
    assert_eq!(
        stats, plain,
        "injection is observational: timing and traffic unchanged"
    );
}

#[test]
fn cachecraft_corrects_symbol_faults_baselines_cannot() {
    let cfg = GpuConfig::tiny();
    let trace = Workload::Spmv.generate(SizeClass::Tiny, 1);
    let fc = FaultConfig::parse("symbol:1.0")
        .expect("valid spec")
        .with_seed(7);
    let tel = TelemetryConfig::disabled();
    let run = |kind| {
        run_scheme_instrumented(&cfg, kind, &trace, &tel, Some(&fc))
            .stats
            .faults
            .expect("fault stats attached")
    };
    let craft = run(SchemeKind::CacheCraft(CacheCraftConfig::for_machine(&cfg)));
    assert!(craft.injected > 0);
    assert_eq!(craft.sdc, 0, "RS(36,32) corrects every single-symbol fault");
    assert_eq!(craft.corrected + craft.benign, craft.injected);
    let naive = run(SchemeKind::InlineNaive { coverage: 8 });
    assert!(
        naive.due + naive.sdc > 0,
        "SEC-DED cannot correct whole-symbol faults: {naive:?}"
    );
}

/// Serializes tests that run matrices: the checkpoint session consulted
/// by `run_matrix` is process-global.
fn guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn matrix_results_come_back_in_deterministic_order() {
    let _guard = guard();
    let cfg = GpuConfig::tiny();
    let opts = ExpOptions {
        size: SizeClass::Tiny,
        threads: 2,
        ..ExpOptions::default()
    };
    let results = run_matrix(
        &cfg,
        &[Workload::VecAdd, Workload::Saxpy],
        &[
            SchemeKind::NoProtection,
            SchemeKind::InlineNaive { coverage: 8 },
        ],
        &opts,
    );
    assert_eq!(results.len(), 4);
    let names: Vec<_> = results
        .iter()
        .map(|r| format!("{}/{}", r.workload.name(), r.scheme.name()))
        .collect();
    assert_eq!(
        names,
        [
            "vecadd/no-protection",
            "vecadd/inline-naive",
            "saxpy/no-protection",
            "saxpy/inline-naive",
        ]
    );
}

#[test]
fn checkpoint_round_trips_across_sessions() {
    let _guard = guard();
    let dir = std::env::temp_dir().join(format!("ccraft-facade-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("checkpoint.json");
    let _ = std::fs::remove_file(&path);
    let cfg = GpuConfig::tiny();
    let opts = ExpOptions {
        size: SizeClass::Tiny,
        threads: 1,
        ..ExpOptions::default()
    };
    let workloads = [Workload::VecAdd];
    let schemes = [
        SchemeKind::NoProtection,
        SchemeKind::InlineNaive { coverage: 8 },
    ];

    // Run 1 records both cells.
    checkpoint::install(Session::start("facade/tiny/1", path.clone(), false));
    let first = run_matrix(&cfg, &workloads, &schemes, &opts);
    checkpoint::clear();
    assert_eq!(first.len(), 2);

    // Simulate an interruption: drop one cell from the file, as if the
    // process died before completing it. The file carries a checksum
    // footer, so read it back through the verified store.
    let (text, verified) = cachecraft::harness::store::read_verified_string(&path).unwrap();
    assert!(verified, "checkpoint must carry a valid checksum footer");
    let mut cp: checkpoint::Checkpoint = serde_json::from_str(&text).unwrap();
    assert_eq!(cp.cells.len(), 2);
    // Rewrite it footer-less on purpose: a legacy (pre-checksum)
    // checkpoint must still resume.
    cp.cells.retain(|c| c.key.contains("no-protection"));
    std::fs::write(&path, serde_json::to_string(&cp).unwrap()).unwrap();

    // Run 2 resumes: the surviving cell replays, the dropped one re-runs,
    // and results are bit-identical to the uninterrupted run.
    checkpoint::install(Session::start("facade/tiny/1", path.clone(), true));
    let second = cachecraft::harness::run_matrix_cells(&cfg, &workloads, &schemes, &opts);
    checkpoint::clear();
    assert_eq!(second.len(), 2);
    assert_eq!(second[0].status, CellStatus::Resumed);
    assert_eq!(second[1].status, CellStatus::Ok);
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(Some(&a.stats), b.stats.as_ref(), "resume is bit-identical");
    }
    // The repaired checkpoint again holds both cells (and is re-written
    // with a footer by the session's durable save).
    let (text, verified) = cachecraft::harness::store::read_verified_string(&path).unwrap();
    assert!(verified);
    let cp: checkpoint::Checkpoint = serde_json::from_str(&text).unwrap();
    assert_eq!(cp.cells.len(), 2);
    assert!(cp.cells.iter().all(|c| c.is_ok()));
    let _ = std::fs::remove_file(&path);
}
