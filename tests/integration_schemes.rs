//! Cross-crate integration tests: full-stack simulations on the tiny
//! machine asserting conservation laws and scheme orderings that must hold
//! regardless of parameters.

use cachecraft::schemes::cachecraft::CacheCraftConfig;
use cachecraft::schemes::factory::{run_scheme, SchemeKind};
use cachecraft::sim::config::GpuConfig;
use cachecraft::sim::dram::MapOrder;
use cachecraft::sim::types::TrafficClass;
use cachecraft::workloads::{SizeClass, Workload};

fn tiny_schemes() -> [SchemeKind; 4] {
    SchemeKind::headline(&GpuConfig::tiny())
}

#[test]
fn every_workload_completes_under_every_scheme() {
    let cfg = GpuConfig::tiny();
    for w in Workload::ALL {
        let trace = w.generate(SizeClass::Tiny, 11);
        for kind in tiny_schemes() {
            let stats = run_scheme(&cfg, kind, &trace);
            assert!(!stats.timed_out, "{w}/{kind} timed out");
            assert_eq!(stats.ops, trace.total_ops(), "{w}/{kind} lost ops");
        }
    }
}

#[test]
fn demand_data_traffic_is_scheme_invariant() {
    // Protection adds ECC traffic but must not change how much *data* is
    // read on demand (same trace, same caches modulo the CacheCraft tax).
    // Single-touch streams only: kernels with reuse may refetch a handful
    // of atoms depending on eviction timing, which differs across schemes.
    let cfg = GpuConfig::tiny();
    for w in [Workload::VecAdd, Workload::Triad, Workload::Saxpy] {
        let trace = w.generate(SizeClass::Tiny, 3);
        let counts: Vec<u64> = tiny_schemes()
            .iter()
            .map(|&k| run_scheme(&cfg, k, &trace).dram_count(TrafficClass::DataRead))
            .collect();
        assert_eq!(counts[0], counts[1], "{w}: naive changed data reads");
        assert_eq!(counts[0], counts[2], "{w}: ecc-cache changed data reads");
        // The taxed CacheCraft L2 may add a small number of extra misses.
        let slack = counts[0] / 50 + 8;
        assert!(
            counts[3] <= counts[0] + slack,
            "{w}: cachecraft data reads {} vs baseline {}",
            counts[3],
            counts[0]
        );
    }
}

#[test]
fn ecc_traffic_ordering_no_vs_naive_vs_cached() {
    let cfg = GpuConfig::tiny();
    for w in [Workload::VecAdd, Workload::Histogram, Workload::Spmv] {
        let trace = w.generate(SizeClass::Tiny, 5);
        let ecc: Vec<u64> = tiny_schemes()
            .iter()
            .map(|&k| {
                let s = run_scheme(&cfg, k, &trace);
                s.dram_count(TrafficClass::EccRead) + s.dram_count(TrafficClass::EccWrite)
            })
            .collect();
        assert_eq!(ecc[0], 0, "{w}: ECC-off must have zero ECC traffic");
        assert!(ecc[1] > 0, "{w}: naive must pay ECC traffic");
        assert!(ecc[2] <= ecc[1], "{w}: ecc-cache worse than naive");
        assert!(ecc[3] <= ecc[1], "{w}: cachecraft worse than naive");
    }
}

#[test]
fn every_dirty_atom_reaches_dram_by_flush() {
    // A pure-store kernel: after the end-of-kernel flush, every written
    // atom must have been written back exactly once under every scheme.
    let cfg = GpuConfig::tiny();
    let trace = Workload::VecAdd.generate(SizeClass::Tiny, 9);
    let stores = trace.footprint_atoms() / 3; // the C array
    for kind in tiny_schemes() {
        let s = run_scheme(&cfg, kind, &trace);
        assert_eq!(
            s.dram_count(TrafficClass::DataWrite),
            stores,
            "{kind}: writes lost or duplicated"
        );
    }
}

#[test]
fn end_to_end_determinism_across_schemes() {
    let cfg = GpuConfig::tiny();
    let trace = Workload::Bfs.generate(SizeClass::Tiny, 21);
    for kind in tiny_schemes() {
        let a = run_scheme(&cfg, kind, &trace);
        let b = run_scheme(&cfg, kind, &trace);
        assert_eq!(a, b, "{kind} not deterministic");
    }
}

#[test]
fn cachecraft_beats_naive_on_average_and_on_traffic() {
    // The headline claim, as hard invariants that are robust at tiny
    // scale: (1) CacheCraft's ECC traffic is lower than naive's on every
    // workload; (2) its performance beats naive in the geometric mean
    // (individual kernels may swing a few percent either way from L2-tax
    // and layout effects).
    let cfg = GpuConfig::tiny();
    let mut ratios = Vec::new();
    for w in Workload::ALL {
        let trace = w.generate(SizeClass::Tiny, 2);
        let naive = run_scheme(&cfg, SchemeKind::InlineNaive { coverage: 8 }, &trace);
        let craft = run_scheme(
            &cfg,
            SchemeKind::CacheCraft(CacheCraftConfig::for_machine(&cfg)),
            &trace,
        );
        let naive_ecc =
            naive.dram_count(TrafficClass::EccRead) + naive.dram_count(TrafficClass::EccWrite);
        let craft_ecc =
            craft.dram_count(TrafficClass::EccRead) + craft.dram_count(TrafficClass::EccWrite);
        assert!(
            craft_ecc < naive_ecc,
            "{w}: cachecraft ECC traffic {craft_ecc} not below naive {naive_ecc}"
        );
        ratios.push(naive.exec_cycles as f64 / craft.exec_cycles as f64);
    }
    let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    assert!(
        geomean > 1.0,
        "cachecraft does not beat naive on average: geomean {geomean:.3}"
    );
}

#[test]
fn hbm_preset_and_fine_interleave_work_end_to_end() {
    let cfg = GpuConfig::hbm2();
    let trace = Workload::Stencil2D.generate(SizeClass::Tiny, 4);
    for kind in SchemeKind::headline(&cfg) {
        let mut scheme = kind.build(&cfg);
        let s = cachecraft::sim::gpu::simulate(&cfg, MapOrder::RoCoBa, &trace, scheme.as_mut());
        assert!(!s.timed_out, "{kind} timed out on hbm2/RoCoBa");
    }
}

#[test]
fn ablation_variants_all_complete_and_order_sanely() {
    let cfg = GpuConfig::tiny();
    let trace = Workload::Saxpy.generate(SizeClass::Tiny, 6);
    let naive = run_scheme(&cfg, SchemeKind::InlineNaive { coverage: 8 }, &trace);
    for cc in [
        CacheCraftConfig::colocate_only(),
        CacheCraftConfig::fragments_only(),
        CacheCraftConfig::reconstruct_only(),
        CacheCraftConfig::for_machine(&cfg),
    ] {
        let cc = CacheCraftConfig {
            fragment_bytes_per_slice: cc.fragment_bytes_per_slice.min(cfg.l2.capacity_bytes / 8),
            ..cc
        };
        let s = run_scheme(&cfg, SchemeKind::CacheCraft(cc), &trace);
        assert!(!s.timed_out);
        let total_ecc = s.dram_count(TrafficClass::EccRead) + s.dram_count(TrafficClass::EccWrite);
        let naive_ecc =
            naive.dram_count(TrafficClass::EccRead) + naive.dram_count(TrafficClass::EccWrite);
        assert!(
            total_ecc <= naive_ecc,
            "variant {cc:?} generated more ECC traffic than naive"
        );
    }
}

#[test]
fn coverage_ratio_scales_ecc_traffic() {
    // With an ECC cache, wider coverage means one fetched ECC atom serves
    // more of the stream: ECC reads must strictly decrease.
    let cfg = GpuConfig::tiny();
    let trace = Workload::VecAdd.generate(SizeClass::Tiny, 8);
    let mut prev = u64::MAX;
    for coverage in [8u32, 16, 32] {
        let s = run_scheme(
            &cfg,
            SchemeKind::EccCache {
                coverage,
                capacity_per_mc: 4 << 10,
            },
            &trace,
        );
        let reads = s.dram_count(TrafficClass::EccRead);
        assert!(reads > 0);
        assert!(
            reads < prev,
            "coverage {coverage}: {reads} ECC reads, not fewer than tighter coverage"
        );
        prev = reads;
    }
}
