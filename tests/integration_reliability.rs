//! End-to-end functional reliability: a byte-accurate protected DRAM
//! emulation combining the inline layout (where check bits live) with the
//! codecs (what they protect), verified under fault injection.
//!
//! This is the functional counterpart of the timing simulator: it proves
//! the data path the schemes model — store data, store check bytes at the
//! layout's ECC atom, corrupt the *physical* array, read back through the
//! decoder — actually preserves data integrity.

use cachecraft::ecc::code::{Codec, DecodeOutcome};
use cachecraft::ecc::layout::{EccPlacement, InlineLayout, ATOM_BYTES};
use cachecraft::ecc::secded::SecDed64;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A functional inline-ECC memory: one flat physical byte array holding
/// both data and ECC atoms per the layout; SEC-DED(72,64) per 8-byte word
/// (4 bytes of check per 32-byte atom, coverage 8).
struct ProtectedDram {
    layout: InlineLayout,
    bytes: Vec<u8>,
    codec: SecDed64,
}

impl ProtectedDram {
    fn new(placement: EccPlacement, total_atoms: u64) -> Self {
        let layout = InlineLayout::new(placement, 8, total_atoms);
        ProtectedDram {
            layout,
            bytes: vec![0; (total_atoms * ATOM_BYTES) as usize],
            codec: SecDed64::new(),
        }
    }

    /// Writes one 32-byte data atom and its check bytes.
    fn store_atom(&mut self, logical: u64, data: &[u8; 32]) {
        let phys = self.layout.logical_to_physical(logical);
        let base = (phys * ATOM_BYTES) as usize;
        self.bytes[base..base + 32].copy_from_slice(data);
        // Four SEC-DED words per atom; 1 check byte each, packed into the
        // atom's 4-byte slot of its ECC atom.
        let ecc_atom = self.layout.ecc_atom_for(phys);
        let (off, len) = self.layout.check_bytes_in_ecc_atom(phys);
        assert_eq!(len, 4);
        let ecc_base = (ecc_atom * ATOM_BYTES + off) as usize;
        for w in 0..4 {
            let check = self.codec.encode(&data[w * 8..w * 8 + 8]);
            self.bytes[ecc_base + w] = check[0];
        }
    }

    /// Reads one data atom through the decoder, returning the data and the
    /// worst decode outcome over its four words.
    fn load_atom(&self, logical: u64) -> ([u8; 32], DecodeOutcome) {
        let phys = self.layout.logical_to_physical(logical);
        let base = (phys * ATOM_BYTES) as usize;
        let ecc_atom = self.layout.ecc_atom_for(phys);
        let (off, _) = self.layout.check_bytes_in_ecc_atom(phys);
        let ecc_base = (ecc_atom * ATOM_BYTES + off) as usize;
        let mut out = [0u8; 32];
        let mut worst = DecodeOutcome::Clean;
        for w in 0..4 {
            let mut word: Vec<u8> = self.bytes[base + w * 8..base + w * 8 + 8].to_vec();
            let check = [self.bytes[ecc_base + w]];
            let outcome = self.codec.decode(&mut word, &check);
            out[w * 8..w * 8 + 8].copy_from_slice(&word);
            worst = match (worst, outcome) {
                (DecodeOutcome::DetectedUncorrectable, _)
                | (_, DecodeOutcome::DetectedUncorrectable) => DecodeOutcome::DetectedUncorrectable,
                (
                    DecodeOutcome::Corrected { flipped_bits: a },
                    DecodeOutcome::Corrected { flipped_bits: b },
                ) => DecodeOutcome::Corrected {
                    flipped_bits: a + b,
                },
                (c @ DecodeOutcome::Corrected { .. }, _)
                | (_, c @ DecodeOutcome::Corrected { .. }) => c,
                _ => DecodeOutcome::Clean,
            };
        }
        (out, worst)
    }

    /// Flips one random bit anywhere in physical memory; returns its byte
    /// index.
    fn flip_random_bit<R: Rng>(&mut self, rng: &mut R) -> usize {
        let byte = rng.gen_range(0..self.bytes.len());
        let bit = rng.gen_range(0..8u32);
        self.bytes[byte] ^= 1 << bit;
        byte
    }
}

fn pattern(logical: u64) -> [u8; 32] {
    let mut data = [0u8; 32];
    for (i, b) in data.iter_mut().enumerate() {
        *b = (logical as u8).wrapping_mul(31).wrapping_add(i as u8);
    }
    data
}

#[test]
fn clean_store_load_round_trip_both_layouts() {
    for placement in [
        EccPlacement::ReservedRegion,
        EccPlacement::RowColocated { row_atoms: 64 },
    ] {
        let mut mem = ProtectedDram::new(placement, 4096);
        let atoms = mem.layout.data_atoms().min(512);
        for a in 0..atoms {
            mem.store_atom(a, &pattern(a));
        }
        for a in 0..atoms {
            let (data, outcome) = mem.load_atom(a);
            assert_eq!(outcome, DecodeOutcome::Clean, "{placement:?} atom {a}");
            assert_eq!(data, pattern(a), "{placement:?} atom {a}");
        }
    }
}

#[test]
fn data_and_ecc_never_overlap() {
    // Storing every data atom must not clobber any other atom's contents:
    // proves the layout keeps data and check bytes disjoint.
    for placement in [
        EccPlacement::ReservedRegion,
        EccPlacement::RowColocated { row_atoms: 64 },
    ] {
        let mut mem = ProtectedDram::new(placement, 2048);
        let atoms = mem.layout.data_atoms();
        for a in 0..atoms {
            mem.store_atom(a, &pattern(a));
        }
        // Rewrite atom 0 with different data; every other atom unaffected.
        mem.store_atom(0, &[0xFF; 32]);
        for a in 1..atoms {
            let (data, outcome) = mem.load_atom(a);
            assert_eq!(outcome, DecodeOutcome::Clean, "{placement:?} atom {a}");
            assert_eq!(data, pattern(a), "{placement:?} atom {a}");
        }
    }
}

#[test]
fn single_bit_upsets_anywhere_are_corrected() {
    // Beam-test style: flip one random physical bit (data OR ECC region),
    // then read everything back. No trial may lose data.
    let mut rng = SmallRng::seed_from_u64(0xBEA11);
    for placement in [
        EccPlacement::ReservedRegion,
        EccPlacement::RowColocated { row_atoms: 64 },
    ] {
        for trial in 0..50 {
            let mut mem = ProtectedDram::new(placement, 1024);
            let atoms = mem.layout.data_atoms();
            for a in 0..atoms {
                mem.store_atom(a, &pattern(a));
            }
            let _ = mem.flip_random_bit(&mut rng);
            let mut corrected = 0;
            for a in 0..atoms {
                let (data, outcome) = mem.load_atom(a);
                assert!(
                    outcome.is_usable(),
                    "{placement:?} trial {trial}: single bit flagged uncorrectable"
                );
                assert_eq!(data, pattern(a), "{placement:?} trial {trial} atom {a}");
                if matches!(outcome, DecodeOutcome::Corrected { .. }) {
                    corrected += 1;
                }
            }
            assert!(corrected <= 1, "one flip corrupted multiple atoms");
        }
    }
}

#[test]
fn double_bit_upsets_in_one_word_are_detected_never_silent() {
    let mut rng = SmallRng::seed_from_u64(0xD0B1E);
    let mut mem = ProtectedDram::new(EccPlacement::RowColocated { row_atoms: 64 }, 1024);
    let atoms = mem.layout.data_atoms();
    for a in 0..atoms {
        mem.store_atom(a, &pattern(a));
    }
    for _ in 0..50 {
        // Two flips within one data word.
        let atom = rng.gen_range(0..atoms);
        let phys = mem.layout.logical_to_physical(atom);
        let word = rng.gen_range(0..4usize);
        let base = (phys * ATOM_BYTES) as usize + word * 8;
        let b1 = rng.gen_range(0..64u32);
        let mut b2 = rng.gen_range(0..64u32);
        while b2 == b1 {
            b2 = rng.gen_range(0..64u32);
        }
        mem.bytes[base + (b1 / 8) as usize] ^= 1 << (b1 % 8);
        mem.bytes[base + (b2 / 8) as usize] ^= 1 << (b2 % 8);
        let (_, outcome) = mem.load_atom(atom);
        assert_eq!(
            outcome,
            DecodeOutcome::DetectedUncorrectable,
            "double-bit error must be detected, never silent"
        );
        // Repair for the next trial.
        mem.bytes[base + (b1 / 8) as usize] ^= 1 << (b1 % 8);
        mem.bytes[base + (b2 / 8) as usize] ^= 1 << (b2 % 8);
        mem.store_atom(atom, &pattern(atom));
    }
}

#[test]
fn capacity_accounting_matches_layout() {
    let mem = ProtectedDram::new(EccPlacement::RowColocated { row_atoms: 64 }, 4096);
    // 64-atom rows, coverage 8: 56 data + 8 ECC per row.
    assert_eq!(mem.layout.data_atoms(), 4096 / 64 * 56);
    assert!(mem.layout.data_capacity_fraction() > 0.85);
}
