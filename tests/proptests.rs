//! Property-based tests over the core data structures and invariants,
//! spanning all workspace crates through the facade.

use cachecraft::ecc::code::{Codec, DecodeOutcome};
use cachecraft::ecc::layout::{EccPlacement, InlineLayout};
use cachecraft::ecc::rs::ReedSolomon;
use cachecraft::ecc::secded::SecDed64;
use cachecraft::ecc::tagged::TaggedSecDed;
use cachecraft::schemes::factory::{run_scheme, SchemeKind};
use cachecraft::sim::cache::SectorCache;
use cachecraft::sim::coalesce::{coalesce, coalesce_writes};
use cachecraft::sim::config::GpuConfig;
use cachecraft::sim::protection::ChannelInterleave;
use cachecraft::sim::trace::{KernelTrace, WarpOp, WarpTrace};
use cachecraft::sim::types::LogicalAtom;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SEC-DED corrects any single-bit error in data or check.
    #[test]
    fn secded_corrects_any_single_bit(data: [u8; 8], pos in 0u32..72) {
        let codec = SecDed64::new();
        let check = codec.encode(&data);
        let mut buf = data.to_vec();
        buf.extend_from_slice(&check);
        buf[(pos / 8) as usize] ^= 1 << (pos % 8);
        let (d, c) = buf.split_at_mut(8);
        let mut d = d.to_vec();
        let outcome = codec.decode(&mut d, c);
        prop_assert!(outcome.is_usable());
        prop_assert_eq!(&d[..], &data[..]);
    }

    /// SEC-DED never silently corrupts on any double-bit error.
    #[test]
    fn secded_never_sdc_on_double_bits(data: [u8; 8], p1 in 0u32..72, p2 in 0u32..72) {
        prop_assume!(p1 != p2);
        let codec = SecDed64::new();
        let check = codec.encode(&data);
        let mut buf = data.to_vec();
        buf.extend_from_slice(&check);
        for p in [p1, p2] {
            buf[(p / 8) as usize] ^= 1 << (p % 8);
        }
        let (d, c) = buf.split_at_mut(8);
        let mut d = d.to_vec();
        let outcome = codec.decode(&mut d, c);
        prop_assert_eq!(outcome, DecodeOutcome::DetectedUncorrectable);
    }

    /// RS(36,32) corrects any error confined to at most 2 symbols.
    #[test]
    fn rs_corrects_up_to_t_symbols(
        seed in 0u64..1000,
        s1 in 0usize..36,
        s2 in 0usize..36,
        e1 in 1u8..=255,
        e2 in 1u8..=255,
    ) {
        let rs = ReedSolomon::new(36, 32).unwrap();
        let data: Vec<u8> = (0..32).map(|i| (seed as u8).wrapping_mul(17).wrapping_add(i)).collect();
        let check = rs.encode(&data);
        let mut buf = data.clone();
        buf.extend_from_slice(&check);
        buf[s1] ^= e1;
        if s2 != s1 {
            buf[s2] ^= e2;
        }
        let (d, c) = buf.split_at_mut(32);
        let mut d = d.to_vec();
        let outcome = rs.decode(&mut d, c);
        prop_assert!(outcome.is_usable(), "outcome {:?}", outcome);
        prop_assert_eq!(&d[..], &data[..]);
    }

    /// Tagged SEC-DED: a wrong tag on clean data is always reported.
    #[test]
    fn tagged_mismatch_always_detected(data: [u8; 8], stored in 0u8..16, expected in 0u8..16) {
        prop_assume!(stored != expected);
        let codec = TaggedSecDed::new(4).unwrap();
        let check = codec.encode(&data, stored);
        let mut buf = data;
        let outcome = codec.decode(&mut buf, &check, expected);
        prop_assert_eq!(outcome, DecodeOutcome::TagMismatch);
        prop_assert_eq!(buf, data);
    }

    /// The inline layout is a bijection between logical data atoms and
    /// non-ECC physical atoms, and ECC lookups are consistent.
    #[test]
    fn layout_bijectivity(
        coverage in prop::sample::select(vec![8u32, 16, 32]),
        colocated: bool,
        probe in 0u64..10_000,
    ) {
        let placement = if colocated {
            EccPlacement::RowColocated { row_atoms: 64 }
        } else {
            EccPlacement::ReservedRegion
        };
        let layout = InlineLayout::new(placement, coverage, 1 << 16);
        let logical = probe % layout.data_atoms();
        let phys = layout.logical_to_physical(logical);
        prop_assert!(!layout.is_ecc_atom(phys));
        prop_assert_eq!(layout.physical_to_logical(phys), Some(logical));
        let ecc = layout.ecc_atom_for(phys);
        prop_assert!(layout.is_ecc_atom(ecc));
        let (first, count) = layout.covered_data_atoms(ecc);
        prop_assert!((first..first + count).contains(&phys));
    }

    /// Channel interleave split/join round-trips and balances.
    #[test]
    fn interleave_round_trip(channels in 1u16..=16, atom in 0u64..1_000_000) {
        let il = ChannelInterleave::new(channels, 8);
        let (ch, local) = il.split(LogicalAtom(atom));
        prop_assert!(ch < channels);
        prop_assert_eq!(il.join(ch, local), LogicalAtom(atom));
    }

    /// Coalescing produces unique atoms covering exactly the input bytes.
    #[test]
    fn coalesce_unique_and_covering(addrs in prop::collection::vec(0u64..100_000, 1..32)) {
        let atoms = coalesce(&addrs);
        let set: std::collections::HashSet<_> = atoms.iter().collect();
        prop_assert_eq!(set.len(), atoms.len(), "duplicate atoms");
        for &a in &addrs {
            prop_assert!(atoms.contains(&LogicalAtom(a / 32)), "address {} uncovered", a);
        }
    }

    /// Write coalescing marks an atom full iff the lanes cover all 32
    /// bytes (checked against a bitmap oracle).
    #[test]
    fn coalesce_writes_coverage_oracle(
        addrs in prop::collection::vec(0u64..4096, 1..32),
        width in prop::sample::select(vec![1u32, 2, 4, 8, 16, 32]),
    ) {
        let result = coalesce_writes(&addrs, width);
        let mut oracle: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for &a in &addrs {
            for b in a..a + width as u64 {
                *oracle.entry(b / 32).or_default() |= 1u64 << (b % 32);
            }
        }
        prop_assert_eq!(result.len(), oracle.len());
        for (atom, full) in result {
            prop_assert_eq!(full, oracle[&atom.0] == (1u64 << 32) - 1, "atom {:?}", atom);
        }
    }

    /// Cache invariant: a filled atom probes true until evicted, and
    /// capacity is never exceeded.
    #[test]
    fn cache_fill_probe_capacity(atoms in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut c = SectorCache::new_hashed(16, 4, 1);
        for &a in &atoms {
            c.fill(a, false);
            prop_assert!(c.probe(a), "atom {} lost right after fill", a);
        }
        prop_assert!(c.valid_atoms() <= 64, "capacity exceeded");
    }

    /// End-to-end: simulation of a random small trace is deterministic and
    /// conserves demand reads across protection schemes.
    #[test]
    fn random_trace_scheme_invariants(
        seed in 0u64..50,
        ops_per_warp in 4usize..24,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let warps: Vec<WarpTrace> = (0..4)
            .map(|_| {
                let ops = (0..ops_per_warp)
                    .map(|_| {
                        if rng.gen_bool(0.3) {
                            WarpOp::Compute { cycles: rng.gen_range(1..20) }
                        } else {
                            let base: u64 = rng.gen_range(0..4096);
                            let atoms: Vec<LogicalAtom> =
                                (0..rng.gen_range(1..4)).map(|k| LogicalAtom(base + k)).collect();
                            if rng.gen_bool(0.3) {
                                WarpOp::Store { atoms, full: rng.gen_bool(0.7) }
                            } else {
                                WarpOp::Load { atoms }
                            }
                        }
                    })
                    .collect();
                WarpTrace::new(ops)
            })
            .collect();
        let trace = KernelTrace::new("prop", warps);
        let cfg = GpuConfig::tiny();
        let a = run_scheme(&cfg, SchemeKind::InlineNaive { coverage: 8 }, &trace);
        let b = run_scheme(&cfg, SchemeKind::InlineNaive { coverage: 8 }, &trace);
        prop_assert_eq!(&a, &b, "nondeterministic simulation");
        prop_assert!(!a.timed_out);
        // Traces with reuse may refetch a few atoms depending on fill
        // timing (MSHR merge windows differ across schemes), so demand
        // reads match within a small tolerance rather than exactly.
        let none = run_scheme(&cfg, SchemeKind::NoProtection, &trace);
        let (lo, hi) = (none.dram[0].min(a.dram[0]), none.dram[0].max(a.dram[0]));
        prop_assert!(hi - lo <= hi / 5 + 4,
            "demand reads diverged: naive {} vs none {}", a.dram[0], none.dram[0]);
    }
}
