//! Randomized property tests over the core data structures and
//! invariants, spanning all workspace crates through the facade.
//!
//! Each test drives a seeded `SmallRng` through a fixed number of cases,
//! so failures are reproducible without an external shrinking framework:
//! the case loop prints enough context (`case i`) to replay by hand.

use cachecraft::ecc::code::{Codec, DecodeOutcome};
use cachecraft::ecc::layout::{EccPlacement, InlineLayout};
use cachecraft::ecc::rs::ReedSolomon;
use cachecraft::ecc::secded::SecDed64;
use cachecraft::ecc::tagged::TaggedSecDed;
use cachecraft::schemes::factory::{run_scheme, SchemeKind};
use cachecraft::sim::cache::SectorCache;
use cachecraft::sim::coalesce::{coalesce, coalesce_writes};
use cachecraft::sim::config::GpuConfig;
use cachecraft::sim::protection::ChannelInterleave;
use cachecraft::sim::trace::{KernelTrace, WarpOp, WarpTrace};
use cachecraft::sim::types::LogicalAtom;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 64;

/// SEC-DED corrects any single-bit error in data or check.
#[test]
fn secded_corrects_any_single_bit() {
    let codec = SecDed64::new();
    let mut rng = SmallRng::seed_from_u64(0xD0C1);
    // Exhaustive over the flipped bit position, random over the payload.
    for pos in 0u32..72 {
        let data: [u8; 8] = rng.gen();
        let check = codec.encode(&data);
        let mut buf = data.to_vec();
        buf.extend_from_slice(&check);
        buf[(pos / 8) as usize] ^= 1 << (pos % 8);
        let (d, c) = buf.split_at_mut(8);
        let mut d = d.to_vec();
        let outcome = codec.decode(&mut d, c);
        assert!(outcome.is_usable(), "bit {pos}: outcome {outcome:?}");
        assert_eq!(&d[..], &data[..], "bit {pos}: corrected to wrong data");
    }
}

/// SEC-DED never silently corrupts on any double-bit error.
#[test]
fn secded_never_sdc_on_double_bits() {
    let codec = SecDed64::new();
    let mut rng = SmallRng::seed_from_u64(0xD0C2);
    for case in 0..CASES {
        let data: [u8; 8] = rng.gen();
        let p1: u32 = rng.gen_range(0..72);
        let mut p2: u32 = rng.gen_range(0..72);
        while p2 == p1 {
            p2 = rng.gen_range(0..72);
        }
        let check = codec.encode(&data);
        let mut buf = data.to_vec();
        buf.extend_from_slice(&check);
        for p in [p1, p2] {
            buf[(p / 8) as usize] ^= 1 << (p % 8);
        }
        let (d, c) = buf.split_at_mut(8);
        let mut d = d.to_vec();
        let outcome = codec.decode(&mut d, c);
        assert_eq!(
            outcome,
            DecodeOutcome::DetectedUncorrectable,
            "case {case}: bits {p1},{p2}"
        );
    }
}

/// RS(36,32) corrects any error confined to at most 2 symbols.
#[test]
fn rs_corrects_up_to_t_symbols() {
    let rs = ReedSolomon::new(36, 32).unwrap();
    let mut rng = SmallRng::seed_from_u64(0xD0C3);
    for case in 0..CASES {
        let seed: u64 = rng.gen_range(0..1000);
        let s1: usize = rng.gen_range(0..36);
        let s2: usize = rng.gen_range(0..36);
        let e1: u8 = rng.gen_range(1..=255);
        let e2: u8 = rng.gen_range(1..=255);
        let data: Vec<u8> = (0..32)
            .map(|i| (seed as u8).wrapping_mul(17).wrapping_add(i))
            .collect();
        let check = rs.encode(&data);
        let mut buf = data.clone();
        buf.extend_from_slice(&check);
        buf[s1] ^= e1;
        if s2 != s1 {
            buf[s2] ^= e2;
        }
        let (d, c) = buf.split_at_mut(32);
        let mut d = d.to_vec();
        let outcome = rs.decode(&mut d, c);
        assert!(outcome.is_usable(), "case {case}: outcome {outcome:?}");
        assert_eq!(&d[..], &data[..], "case {case}: wrong correction");
    }
}

/// Tagged SEC-DED: a wrong tag on clean data is always reported.
#[test]
fn tagged_mismatch_always_detected() {
    let codec = TaggedSecDed::new(4).unwrap();
    let mut rng = SmallRng::seed_from_u64(0xD0C4);
    for case in 0..CASES {
        let data: [u8; 8] = rng.gen();
        let stored: u8 = rng.gen_range(0..16);
        let mut expected: u8 = rng.gen_range(0..16);
        while expected == stored {
            expected = rng.gen_range(0..16);
        }
        let check = codec.encode(&data, stored);
        let mut buf = data;
        let outcome = codec.decode(&mut buf, &check, expected);
        assert_eq!(outcome, DecodeOutcome::TagMismatch, "case {case}");
        assert_eq!(buf, data, "case {case}: data mutated on mismatch");
    }
}

/// The inline layout is a bijection between logical data atoms and
/// non-ECC physical atoms, and ECC lookups are consistent.
#[test]
fn layout_bijectivity() {
    let mut rng = SmallRng::seed_from_u64(0xD0C5);
    for coverage in [8u32, 16, 32] {
        for colocated in [false, true] {
            let placement = if colocated {
                EccPlacement::RowColocated { row_atoms: 64 }
            } else {
                EccPlacement::ReservedRegion
            };
            let layout = InlineLayout::new(placement, coverage, 1 << 16);
            for _ in 0..16 {
                let probe: u64 = rng.gen_range(0..10_000);
                let logical = probe % layout.data_atoms();
                let phys = layout.logical_to_physical(logical);
                assert!(!layout.is_ecc_atom(phys));
                assert_eq!(layout.physical_to_logical(phys), Some(logical));
                let ecc = layout.ecc_atom_for(phys);
                assert!(layout.is_ecc_atom(ecc));
                let (first, count) = layout.covered_data_atoms(ecc);
                assert!(
                    (first..first + count).contains(&phys),
                    "coverage {coverage} colocated {colocated} probe {probe}"
                );
            }
        }
    }
}

/// Channel interleave split/join round-trips and balances.
#[test]
fn interleave_round_trip() {
    let mut rng = SmallRng::seed_from_u64(0xD0C6);
    for channels in 1u16..=16 {
        let il = ChannelInterleave::new(channels, 8);
        for _ in 0..16 {
            let atom: u64 = rng.gen_range(0..1_000_000);
            let (ch, local) = il.split(LogicalAtom(atom));
            assert!(ch < channels);
            assert_eq!(il.join(ch, local), LogicalAtom(atom));
        }
    }
}

/// Coalescing produces unique atoms covering exactly the input bytes.
#[test]
fn coalesce_unique_and_covering() {
    let mut rng = SmallRng::seed_from_u64(0xD0C7);
    for case in 0..CASES {
        let len: usize = rng.gen_range(1..32);
        let addrs: Vec<u64> = (0..len).map(|_| rng.gen_range(0..100_000)).collect();
        let atoms = coalesce(&addrs);
        let set: std::collections::HashSet<_> = atoms.iter().collect();
        assert_eq!(set.len(), atoms.len(), "case {case}: duplicate atoms");
        for &a in &addrs {
            assert!(
                atoms.contains(&LogicalAtom(a / 32)),
                "case {case}: address {a} uncovered"
            );
        }
    }
}

/// Write coalescing marks an atom full iff the lanes cover all 32
/// bytes (checked against a bitmap oracle).
#[test]
fn coalesce_writes_coverage_oracle() {
    let mut rng = SmallRng::seed_from_u64(0xD0C8);
    let widths = [1u32, 2, 4, 8, 16, 32];
    for case in 0..CASES {
        let len: usize = rng.gen_range(1..32);
        let addrs: Vec<u64> = (0..len).map(|_| rng.gen_range(0..4096)).collect();
        let width = widths[rng.gen_range(0..widths.len())];
        let result = coalesce_writes(&addrs, width);
        let mut oracle: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for &a in &addrs {
            for b in a..a + width as u64 {
                *oracle.entry(b / 32).or_default() |= 1u64 << (b % 32);
            }
        }
        assert_eq!(result.len(), oracle.len(), "case {case}");
        for (atom, full) in result {
            assert_eq!(
                full,
                oracle[&atom.0] == (1u64 << 32) - 1,
                "case {case}: atom {atom:?}"
            );
        }
    }
}

/// Cache invariant: a filled atom probes true until evicted, and
/// capacity is never exceeded.
#[test]
fn cache_fill_probe_capacity() {
    let mut rng = SmallRng::seed_from_u64(0xD0C9);
    for case in 0..CASES {
        let mut c = SectorCache::new_hashed(16, 4, 1);
        let len: usize = rng.gen_range(1..200);
        for _ in 0..len {
            let a: u64 = rng.gen_range(0..10_000);
            c.fill(a, false);
            assert!(c.probe(a), "case {case}: atom {a} lost right after fill");
        }
        assert!(c.valid_atoms() <= 64, "case {case}: capacity exceeded");
    }
}

/// End-to-end: simulation of a random small trace is deterministic and
/// conserves demand reads across protection schemes.
#[test]
fn random_trace_scheme_invariants() {
    for seed in 0u64..8 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ops_per_warp: usize = rng.gen_range(4..24);
        let warps: Vec<WarpTrace> = (0..4)
            .map(|_| {
                let ops = (0..ops_per_warp)
                    .map(|_| {
                        if rng.gen_bool(0.3) {
                            WarpOp::Compute {
                                cycles: rng.gen_range(1..20),
                            }
                        } else {
                            let base: u64 = rng.gen_range(0..4096);
                            let atoms: Vec<LogicalAtom> = (0..rng.gen_range(1..4u64))
                                .map(|k| LogicalAtom(base + k))
                                .collect();
                            if rng.gen_bool(0.3) {
                                WarpOp::Store {
                                    atoms,
                                    full: rng.gen_bool(0.7),
                                }
                            } else {
                                WarpOp::Load { atoms }
                            }
                        }
                    })
                    .collect();
                WarpTrace::new(ops)
            })
            .collect();
        let trace = KernelTrace::new("prop", warps);
        let cfg = GpuConfig::tiny();
        let a = run_scheme(&cfg, SchemeKind::InlineNaive { coverage: 8 }, &trace);
        let b = run_scheme(&cfg, SchemeKind::InlineNaive { coverage: 8 }, &trace);
        assert_eq!(a, b, "seed {seed}: nondeterministic simulation");
        assert!(!a.timed_out, "seed {seed}");
        // Traces with reuse may refetch a few atoms depending on fill
        // timing (MSHR merge windows differ across schemes), so demand
        // reads match within a small tolerance rather than exactly.
        let none = run_scheme(&cfg, SchemeKind::NoProtection, &trace);
        let (lo, hi) = (none.dram[0].min(a.dram[0]), none.dram[0].max(a.dram[0]));
        assert!(
            hi - lo <= hi / 5 + 4,
            "seed {seed}: demand reads diverged: naive {} vs none {}",
            a.dram[0],
            none.dram[0]
        );
    }
}
