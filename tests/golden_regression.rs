//! Golden regression: pinned end-to-end statistics for one configuration.
//!
//! The simulator is fully deterministic, so these exact values must
//! reproduce on any platform. If a deliberate model change shifts them,
//! re-baseline *and* re-run the full evaluation (EXPERIMENTS.md) in the
//! same change.

use cachecraft::schemes::factory::{run_scheme, SchemeKind};
use cachecraft::sim::config::GpuConfig;
use cachecraft::workloads::{SizeClass, Workload};

#[test]
fn pinned_stats_vecadd_tiny() {
    let cfg = GpuConfig::tiny();
    let trace = Workload::VecAdd.generate(SizeClass::Tiny, 1);
    let expect: [(&str, u64, u64, [u64; 4]); 4] = [
        ("no-protection", 32675, 32492, [16384, 8192, 0, 0]),
        ("inline-naive", 66240, 65585, [16384, 8192, 24576, 8192]),
        ("ecc-cache", 43125, 42425, [16384, 8192, 3072, 984]),
        ("cachecraft", 38168, 37838, [16384, 8192, 2345, 1307]),
    ];
    for (kind, (name, cycles, exec, dram)) in SchemeKind::headline(&cfg).into_iter().zip(expect) {
        let s = run_scheme(&cfg, kind, &trace);
        assert_eq!(kind.name(), name);
        assert_eq!(s.cycles, cycles, "{name}: total cycles drifted");
        assert_eq!(s.exec_cycles, exec, "{name}: exec cycles drifted");
        assert_eq!(s.dram, dram, "{name}: DRAM traffic drifted");
    }
}
