//! Golden regression: pinned end-to-end statistics for one configuration.
//!
//! The simulator is fully deterministic, so these exact values must
//! reproduce on any platform. If a deliberate model change shifts them,
//! re-baseline *and* re-run the full evaluation (EXPERIMENTS.md) in the
//! same change.

use cachecraft::schemes::factory::{run_scheme, run_scheme_exec, SchemeKind};
use cachecraft::sim::config::GpuConfig;
use cachecraft::sim::ExecConfig;
use cachecraft::telemetry::TelemetryConfig;
use cachecraft::workloads::{SizeClass, Workload};

/// Runs `kind` over `trace` with the cycle loop sharded across
/// `sim_threads` threads, telemetry off, no fault injection.
fn run_sharded(
    cfg: &GpuConfig,
    kind: SchemeKind,
    trace: &cachecraft::sim::trace::KernelTrace,
    sim_threads: u32,
) -> cachecraft::sim::SimStats {
    run_scheme_exec(
        cfg,
        kind,
        trace,
        &TelemetryConfig::disabled(),
        None,
        false,
        &ExecConfig { sim_threads },
    )
    .stats
}

#[test]
fn pinned_stats_vecadd_tiny() {
    let cfg = GpuConfig::tiny();
    let trace = Workload::VecAdd.generate(SizeClass::Tiny, 1);
    let expect: [(&str, u64, u64, [u64; 4]); 4] = [
        ("no-protection", 32675, 32492, [16384, 8192, 0, 0]),
        ("inline-naive", 66240, 65585, [16384, 8192, 24576, 8192]),
        ("ecc-cache", 43125, 42425, [16384, 8192, 3072, 984]),
        ("cachecraft", 38168, 37838, [16384, 8192, 2345, 1307]),
    ];
    for (kind, (name, cycles, exec, dram)) in SchemeKind::headline(&cfg).into_iter().zip(expect) {
        let s = run_scheme(&cfg, kind, &trace);
        assert_eq!(kind.name(), name);
        assert_eq!(s.cycles, cycles, "{name}: total cycles drifted");
        assert_eq!(s.exec_cycles, exec, "{name}: exec cycles drifted");
        assert_eq!(s.dram, dram, "{name}: DRAM traffic drifted");
    }
}

/// Channel-sharded execution must reproduce the pinned golden statistics
/// **bit-identically** at every shard count, not merely agree with the
/// single-threaded run of the same build: the pins anchor both.
#[test]
fn pinned_stats_hold_at_every_sim_thread_count() {
    let cfg = GpuConfig::tiny();
    let trace = Workload::VecAdd.generate(SizeClass::Tiny, 1);
    let expect: [(&str, u64, u64, [u64; 4]); 4] = [
        ("no-protection", 32675, 32492, [16384, 8192, 0, 0]),
        ("inline-naive", 66240, 65585, [16384, 8192, 24576, 8192]),
        ("ecc-cache", 43125, 42425, [16384, 8192, 3072, 984]),
        ("cachecraft", 38168, 37838, [16384, 8192, 2345, 1307]),
    ];
    for sim_threads in [1u32, 2, 8] {
        for (kind, (name, cycles, exec, dram)) in SchemeKind::headline(&cfg).into_iter().zip(expect)
        {
            let s = run_sharded(&cfg, kind, &trace, sim_threads);
            assert_eq!(s.cycles, cycles, "{name} @{sim_threads} threads: cycles");
            assert_eq!(s.exec_cycles, exec, "{name} @{sim_threads} threads: exec");
            assert_eq!(s.dram, dram, "{name} @{sim_threads} threads: dram");
        }
    }
}

/// The full-width matrix: every headline scheme over the whole golden
/// corpus (all workloads) must produce `SimStats` equal to the
/// single-threaded baseline at 2 and 8 shard threads. `SimStats` derives
/// `PartialEq` over every counter, so this is bitwise equality of the
/// entire statistics block, not just the headline numbers.
#[test]
fn golden_corpus_is_bit_identical_across_sim_threads() {
    let cfg = GpuConfig::tiny();
    for wl in Workload::ALL {
        let trace = wl.generate(SizeClass::Tiny, 1);
        for kind in SchemeKind::headline(&cfg) {
            let baseline = run_scheme(&cfg, kind, &trace);
            for sim_threads in [2u32, 8] {
                let sharded = run_sharded(&cfg, kind, &trace, sim_threads);
                assert_eq!(
                    baseline,
                    sharded,
                    "{}/{} diverged at sim_threads={sim_threads}",
                    wl.name(),
                    kind.name()
                );
            }
        }
    }
}
