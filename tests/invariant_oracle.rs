//! Runtime invariant oracle, end to end (`--features check-invariants`).
//!
//! Two claims, one test each:
//!
//! 1. **The oracle is transparent.** Re-running the golden corpus with
//!    every conservation / protocol / fast-forward-memo check armed
//!    reproduces the exact pinned statistics of the default build — the
//!    instrumented build ticks through predicted-idle spans instead of
//!    jumping them, and the results are bit-identical.
//! 2. **The oracle has teeth.** A deliberately lying protection scheme —
//!    one that buffers a timed ECC write but reports no timed event, the
//!    precise contract violation `next_timed_event` exists to prevent —
//!    is caught the moment its hidden write lands inside a span the loop
//!    proved idle.

#![cfg(feature = "check-invariants")]

use cachecraft::schemes::factory::{run_scheme, SchemeKind};
use cachecraft::sim::config::GpuConfig;
use cachecraft::sim::dram::MapOrder;
use cachecraft::sim::gpu::simulate;
use cachecraft::sim::protection::{
    ChannelInterleave, FillPlan, ProtectionScheme, ProtectionStats, WritebackPlan,
};
use cachecraft::sim::trace::{KernelTrace, WarpOp, WarpTrace};
use cachecraft::sim::types::{Cycle, LogicalAtom, PhysLoc};
use cachecraft::workloads::{SizeClass, Workload};

/// The golden corpus under the oracle: every check armed, every
/// predicted-idle span ticked through and verified, and the pinned
/// statistics of `tests/golden_regression.rs` still reproduced exactly.
#[test]
fn oracle_reproduces_pinned_golden_stats() {
    let cfg = GpuConfig::tiny();
    let trace = Workload::VecAdd.generate(SizeClass::Tiny, 1);
    let expect: [(&str, u64, u64, [u64; 4]); 4] = [
        ("no-protection", 32675, 32492, [16384, 8192, 0, 0]),
        ("inline-naive", 66240, 65585, [16384, 8192, 24576, 8192]),
        ("ecc-cache", 43125, 42425, [16384, 8192, 3072, 984]),
        ("cachecraft", 38168, 37838, [16384, 8192, 2345, 1307]),
    ];
    for (kind, (name, cycles, exec, dram)) in SchemeKind::headline(&cfg).into_iter().zip(expect) {
        let s = run_scheme(&cfg, kind, &trace);
        assert_eq!(kind.name(), name);
        assert_eq!(s.cycles, cycles, "{name}: oracle build drifted (cycles)");
        assert_eq!(s.exec_cycles, exec, "{name}: oracle build drifted (exec)");
        assert_eq!(s.dram, dram, "{name}: oracle build drifted (dram)");
    }
}

/// Broader oracle coverage: write-back-heavy and irregular workloads
/// exercise the RMW, coalescing and conflict paths the streaming golden
/// kernel never reaches. Any invariant violation panics; the assertions
/// here only confirm the runs did real work.
#[test]
fn oracle_passes_on_varied_workloads() {
    let cfg = GpuConfig::tiny();
    for wl in [Workload::Triad, Workload::Transpose, Workload::Histogram] {
        let trace = wl.generate(SizeClass::Tiny, 7);
        for kind in SchemeKind::headline(&cfg) {
            let s = run_scheme(&cfg, kind, &trace);
            assert!(!s.timed_out, "{wl:?}/{}: timed out", kind.name());
            assert!(s.dram_bytes() > 0, "{wl:?}/{}: no traffic", kind.name());
        }
    }
}

/// The oracle under **sharded** execution: the per-lane loops arm the
/// same conservation and protocol checks (plus the shard-only gate-mirror
/// cross-checks), tick through every cycle, and must still reproduce the
/// pinned golden statistics bit-identically. This is the strongest
/// evidence the epoch-barrier protocol is not quietly reordering work:
/// every invariant is asserted on every cycle of every lane.
#[test]
fn oracle_reproduces_pinned_golden_stats_sharded() {
    use cachecraft::schemes::factory::run_scheme_exec;
    use cachecraft::telemetry::TelemetryConfig;

    let cfg = GpuConfig::tiny();
    let trace = Workload::VecAdd.generate(SizeClass::Tiny, 1);
    let expect: [(&str, u64, u64, [u64; 4]); 4] = [
        ("no-protection", 32675, 32492, [16384, 8192, 0, 0]),
        ("inline-naive", 66240, 65585, [16384, 8192, 24576, 8192]),
        ("ecc-cache", 43125, 42425, [16384, 8192, 3072, 984]),
        ("cachecraft", 38168, 37838, [16384, 8192, 2345, 1307]),
    ];
    for sim_threads in [2u32, 8] {
        for (kind, (name, cycles, exec, dram)) in SchemeKind::headline(&cfg).into_iter().zip(expect)
        {
            let s = run_scheme_exec(
                &cfg,
                kind,
                &trace,
                &TelemetryConfig::disabled(),
                None,
                false,
                &cachecraft::sim::ExecConfig { sim_threads },
            )
            .stats;
            assert_eq!(s.cycles, cycles, "{name} sharded@{sim_threads}: cycles");
            assert_eq!(s.exec_cycles, exec, "{name} sharded@{sim_threads}: exec");
            assert_eq!(s.dram, dram, "{name} sharded@{sim_threads}: dram");
        }
    }
}

/// A scheme that violates the `next_timed_event` contract: `demand_fill`
/// buffers an ECC write due 500 cycles later, but `next_timed_event`
/// claims the scheme has no timed behaviour. The idle fast-forward
/// therefore proves spans idle that are not — exactly the class of bug
/// the tick-through oracle exists to catch.
#[derive(Debug)]
struct LyingScheme {
    interleave: ChannelInterleave,
    /// Buffered ECC writes: `(channel, local atom, due cycle)`.
    pending: Vec<(u16, u64, Cycle)>,
}

impl LyingScheme {
    fn new(interleave: ChannelInterleave) -> Self {
        LyingScheme {
            interleave,
            pending: Vec::new(),
        }
    }
}

impl ProtectionScheme for LyingScheme {
    fn name(&self) -> &str {
        "lying"
    }

    fn map(&self, logical: LogicalAtom) -> PhysLoc {
        let (channel, local) = self.interleave.split(logical);
        PhysLoc::new(channel, local)
    }

    fn demand_fill(&mut self, loc: PhysLoc, now: Cycle) -> FillPlan {
        // Hide a delayed ECC write in a carve-out far above the data.
        self.pending
            .push((loc.channel, loc.atom + (1 << 20), now + 500));
        FillPlan::none()
    }

    fn ecc_arrived(&mut self, _loc: PhysLoc, _now: Cycle) {}

    fn writeback(
        &mut self,
        _loc: PhysLoc,
        _now: Cycle,
        _resident: &mut dyn FnMut(u64) -> bool,
    ) -> WritebackPlan {
        WritebackPlan::none()
    }

    fn drain_ecc_writes(&mut self, channel: u16, now: Cycle, budget: usize) -> Vec<u64> {
        let mut out = Vec::new();
        self.pending.retain(|&(ch, atom, due)| {
            if ch == channel && due <= now && out.len() < budget {
                out.push(atom);
                false
            } else {
                true
            }
        });
        out
    }

    fn flush(&mut self) {
        for p in &mut self.pending {
            p.2 = 0;
        }
    }

    fn is_drained(&self) -> bool {
        self.pending.is_empty()
    }

    // The lie: pending timed writes exist, but none are ever announced.
    // (A correct scheme returns the earliest pending deadline here.)

    fn stats(&self) -> ProtectionStats {
        ProtectionStats::default()
    }
}

/// The hidden write lands mid-span: one load plants the delayed ECC
/// write, a long trailing compute makes the machine provably idle, and
/// 500 cycles later the drain mutates memory-controller state inside the
/// frozen span. The oracle must abort the run.
#[test]
#[should_panic(expected = "predicted-idle")]
fn lying_scheme_is_caught_mid_span() {
    let cfg = GpuConfig::tiny();
    let scheme_interleave = ChannelInterleave::new(cfg.mem.channels, cfg.mem.interleave_atoms);
    let mut scheme = LyingScheme::new(scheme_interleave);
    let trace = KernelTrace::new(
        "lying-probe",
        vec![WarpTrace::new(vec![
            WarpOp::Load {
                atoms: vec![LogicalAtom(0)],
            },
            WarpOp::Compute { cycles: 4000 },
        ])],
    );
    let _ = simulate(&cfg, MapOrder::RoBaCo, &trace, &mut scheme);
}
