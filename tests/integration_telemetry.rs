//! End-to-end telemetry acceptance: the observability subsystem must see
//! inside a run without perturbing it.
//!
//! Covers the PR's acceptance criteria at the facade level:
//! * disabled telemetry leaves `SimStats` bit-identical (and its JSON free
//!   of telemetry keys);
//! * an enabled run attaches a non-empty epoch time-series and a latency
//!   histogram with sane percentiles (`p99 >= p50 >= 1` cycle);
//! * a full-telemetry run produces a Chrome-trace JSON with at least one
//!   complete event per simulated component lane.

use cachecraft::schemes::cachecraft::CacheCraftConfig;
use cachecraft::schemes::factory::{run_scheme, run_scheme_with_telemetry, SchemeKind};
use cachecraft::sim::config::GpuConfig;
use cachecraft::telemetry::TelemetryConfig;
use cachecraft::workloads::{SizeClass, Workload};

fn cachecraft_kind(cfg: &GpuConfig) -> SchemeKind {
    SchemeKind::CacheCraft(CacheCraftConfig::for_machine(cfg))
}

#[test]
fn disabled_telemetry_is_invisible() {
    let cfg = GpuConfig::tiny();
    let trace = Workload::Spmv.generate(SizeClass::Tiny, 1);
    let kind = cachecraft_kind(&cfg);
    let plain = run_scheme(&cfg, kind, &trace);
    let off = run_scheme_with_telemetry(&cfg, kind, &trace, &TelemetryConfig::disabled());
    assert_eq!(
        off.stats, plain,
        "disabled telemetry must not perturb stats"
    );
    assert!(off.trace.is_none());
    let json = serde_json::to_string(&plain).unwrap();
    assert!(
        !json.contains("latency_hist") && !json.contains("timeline"),
        "disabled run must serialize without telemetry keys: {json}"
    );
}

#[test]
fn enabled_run_reports_timeline_and_percentiles() {
    let cfg = GpuConfig::tiny();
    let trace = Workload::Spmv.generate(SizeClass::Tiny, 1);
    let out = run_scheme_with_telemetry(
        &cfg,
        cachecraft_kind(&cfg),
        &trace,
        &TelemetryConfig::enabled(),
    );
    // Aggregates are unchanged relative to a plain run.
    let plain = run_scheme(&cfg, cachecraft_kind(&cfg), &trace);
    assert_eq!(out.stats.exec_cycles, plain.exec_cycles);
    assert_eq!(out.stats.dram, plain.dram);

    let hist = out.stats.latency_hist.as_ref().expect("histogram attached");
    assert!(hist.count > 0);
    assert!(
        hist.p99() >= hist.p50(),
        "p99 {} < p50 {}",
        hist.p99(),
        hist.p50()
    );
    assert!(hist.p50() >= 1, "p50 below one cycle");
    assert!((hist.mean() - plain.mean_read_latency).abs() < 1e-9);

    let tl = out.stats.timeline.as_ref().expect("timeline attached");
    assert!(tl.epochs() >= 1, "timeline must be non-empty");
    assert!(tl.series("ipc").is_some());
    assert!(tl.series("dram.reads").is_some());
    let reads: f64 = tl.series("dram.reads").unwrap().points.iter().sum();
    assert!(
        (reads - hist.count as f64).abs() < 1e-9,
        "epoch reads must sum to total"
    );
}

#[test]
fn chrome_trace_covers_every_component() {
    let cfg = GpuConfig::tiny();
    let trace = Workload::Spmv.generate(SizeClass::Tiny, 1);
    let out = run_scheme_with_telemetry(
        &cfg,
        cachecraft_kind(&cfg),
        &trace,
        &TelemetryConfig::full(),
    );
    let chrome = out.trace.expect("trace collected");
    assert!(!chrome.is_empty());
    // At least one complete event per SM lane and per DRAM-channel lane.
    for sm in 0..cfg.core.sms {
        let tid = 1 + sm as u32;
        assert!(
            chrome.events().iter().any(|e| e.tid == tid),
            "no events for SM {sm}"
        );
    }
    for ch in 0..cfg.mem.channels {
        let tid = 64 + ch as u32;
        assert!(
            chrome.events().iter().any(|e| e.tid == tid),
            "no events for DRAM channel {ch}"
        );
    }
    let json = chrome.to_json();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(
        json.contains("\"ph\":\"X\""),
        "must contain complete events"
    );
    assert!(json.contains("\"ph\":\"M\""), "must name its tracks");
}

#[test]
fn telemetry_round_trips_through_json() {
    let cfg = GpuConfig::tiny();
    let trace = Workload::Histogram.generate(SizeClass::Tiny, 3);
    let out = run_scheme_with_telemetry(
        &cfg,
        cachecraft_kind(&cfg),
        &trace,
        &TelemetryConfig::enabled(),
    );
    let json = serde_json::to_string_pretty(&out.stats).unwrap();
    let back: cachecraft::sim::SimStats = serde_json::from_str(&json).unwrap();
    assert_eq!(back, out.stats);
    let h = back.latency_hist.expect("histogram survives round trip");
    assert_eq!(h.p99(), out.stats.latency_hist.as_ref().unwrap().p99());
}
