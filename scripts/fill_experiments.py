#!/usr/bin/env python3
"""Splices measured tables from a full `exp-all` run into EXPERIMENTS.md.

Usage: python3 scripts/fill_experiments.py results/full_run.txt [more dumps...]

Each `PLACEHOLDER_<ID>` marker in EXPERIMENTS.md is replaced by the
markdown table(s) of section `## <ID>:` from the results dump.
"""

import re
import sys


def sections(path):
    """Maps experiment id -> list of markdown tables in its section."""
    text = open(path).read()
    out = {}
    parts = re.split(r"^## ", text, flags=re.M)
    for part in parts[1:]:
        header, _, body = part.partition("\n")
        exp_id = header.split(":")[0].strip()
        tables = re.findall(r"((?:^\|.*\n)+)", body, flags=re.M)
        out[exp_id] = tables
    return out


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    tables = sections(sys.argv[1])
    if len(sys.argv) > 2:
        tables.update(sections(sys.argv[2]))
    doc = open("EXPERIMENTS.md").read()

    def repl(match):
        exp_id = match.group(1)
        if exp_id not in tables or not tables[exp_id]:
            print(f"warning: no tables for {exp_id}", file=sys.stderr)
            return match.group(0)
        return "\n".join(t.rstrip() for t in tables[exp_id])

    new = re.sub(r"^PLACEHOLDER_(\w+)$", repl, doc, flags=re.M)
    open("EXPERIMENTS.md", "w").write(new)
    remaining = re.findall(r"^PLACEHOLDER_\w+$", new, flags=re.M)
    print(f"filled; remaining placeholders: {remaining}")


if __name__ == "__main__":
    main()
