//! Slice sampling helpers (`rand::seq`).

use crate::{Rng, RngCore};

/// Random selection and shuffling over slices.
pub trait SliceRandom {
    /// Element type of the underlying slice.
    type Item;

    /// Returns a uniformly chosen element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Fisher–Yates shuffles the slice in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Shuffles `amount` uniformly chosen elements to the end of the
    /// slice and returns `(chosen, rest)`, matching rand 0.8 semantics.
    fn partial_shuffle<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [Self::Item], &mut [Self::Item]);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }

    fn partial_shuffle<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [T], &mut [T]) {
        let len = self.len();
        let end = len.saturating_sub(amount);
        for i in (end..len).rev() {
            if i > 0 {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
        let (rest, chosen) = self.split_at_mut(end);
        (chosen, rest)
    }
}
