//! Vendored, offline-compatible subset of the `rand` API.
//!
//! Implements exactly the surface this workspace uses: `SmallRng`
//! (xoshiro256++ seeded through splitmix64, the same generator family as
//! rand 0.8's 64-bit `SmallRng`), `Rng::{gen, gen_range, gen_bool}`,
//! `SeedableRng::seed_from_u64` and `seq::SliceRandom`.
//!
//! The generated sequences are deterministic per seed but are NOT
//! guaranteed to match upstream rand bit-for-bit; golden-regression
//! baselines are pinned against this implementation.

pub mod rngs;
pub mod seq;

/// Low-level uniform word source.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty)*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8 u16 u32 u64 usize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a uniform `u64` onto `[0, span)` with a widening multiply
/// (Lemire reduction without the rejection step — bias is below 2^-32
/// for every span this workspace uses).
fn scale_u64(word: u64, span: u64) -> u64 {
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty)*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + scale_u64(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + scale_u64(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8 u16 u32 u64 usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty)*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + scale_u64(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + scale_u64(rng.next_u64(), span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i8 i16 i32 i64 isize);

/// Convenience sampling methods layered on [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        let first: u64 = SmallRng::seed_from_u64(42).gen();
        assert_ne!(first, c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u8 = rng.gen_range(0..16);
            assert!(v < 16);
            let w: u8 = rng.gen_range(1..=255);
            assert!(w >= 1);
            let x: u64 = rng.gen_range(10..11);
            assert_eq!(x, 10);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn slice_helpers() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut data: Vec<u32> = (0..100).collect();
        let original = data.clone();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original);
        assert!(original.choose(&mut rng).is_some());
        assert!(Vec::<u32>::new().choose(&mut rng).is_none());
        let (picked, rest) = data.partial_shuffle(&mut rng, 10);
        assert_eq!(picked.len(), 10);
        assert_eq!(rest.len(), 90);
    }
}
