//! Vendored, offline-compatible subset of the `serde_json` API.
//!
//! Provides [`to_string`], [`to_string_pretty`] and [`from_str`] over the
//! [`serde::Value`] data model from the vendored `serde` crate. The output
//! format follows serde_json's defaults: compact (`,`/`:` separators, no
//! whitespace) or two-space-indented pretty printing, floats always carry
//! a decimal point, and object keys keep insertion order.

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Serializes a value as a compact JSON string.
///
/// # Errors
///
/// Never fails for the types in this workspace; the `Result` mirrors the
/// real serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as a two-space-indented JSON string.
///
/// # Errors
///
/// Never fails for the types in this workspace.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON document into a value of type `T`.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a type mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser { input: s.as_bytes(), pos: 0 };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.input.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                // serde_json rejects non-finite floats; emitting null keeps
                // documents loadable without plumbing an error path.
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.input.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.input
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::msg("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.parse_keyword("null", Value::Null),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.parse_string()?)),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.input[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .input
                .get(self.pos)
                .ok_or_else(|| Error::msg("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .input
                        .get(self.pos)
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\u`-escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.input.get(self.pos) == Some(&b'\\')
                                    && self.input.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error::msg("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: find the full scalar in the source.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.input[start..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .input
            .get(self.pos..end)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| Error::msg("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.input.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.input.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn round_trips_containers() {
        let v = vec![1u64, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&s).unwrap(), v);
        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn pretty_print_indents() {
        let v = vec![1u64, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<bool>("tru").is_err());
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "\u{1F600}");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "\u{1F600}");
        assert_eq!(from_str::<String>("\"caché\"").unwrap(), "caché");
    }
}
