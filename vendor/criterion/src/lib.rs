//! Vendored, offline-compatible subset of the `criterion` API.
//!
//! Provides just enough surface for this workspace's benches to compile
//! and run: each `bench_function` / `bench_with_input` call executes its
//! body a handful of timed iterations and prints a mean wall time. This
//! is a smoke-test harness, not a statistics engine — use it to check the
//! benches still run and for coarse relative numbers only.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// Throughput annotation (printed, not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup {
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the time budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Records the per-iteration throughput (printed only).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        match t {
            Throughput::Bytes(b) => println!("  throughput: {b} bytes/iter"),
            Throughput::Elements(e) => println!("  throughput: {e} elements/iter"),
        }
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            budget: self.measurement_time,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        b.report(&id.to_string());
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            budget: self.measurement_time,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        b.report(&id.id);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Timing loop handle passed to benchmark bodies.
pub struct Bencher {
    sample_size: usize,
    budget: Duration,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.sample_size {
            std::hint::black_box(routine());
            self.iters += 1;
            if start.elapsed() > self.budget {
                break;
            }
        }
        self.total = start.elapsed();
    }

    fn report(&self, id: &str) {
        let mean = if self.iters > 0 {
            self.total / u32::try_from(self.iters).unwrap_or(u32::MAX)
        } else {
            Duration::ZERO
        };
        println!("  {id}: {mean:?}/iter over {} iters", self.iters);
    }
}

/// Mirrors criterion's `black_box` re-export.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
