//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for
//! the offline serde subset (see `vendor/README.md`).
//!
//! Supported input shapes — exactly what this workspace uses:
//!
//! * structs with named fields;
//! * newtype structs (`struct Id(pub u64);`);
//! * enums whose variants are unit or struct-like (externally tagged in
//!   JSON, matching real serde: `"Variant"` / `{"Variant": {...}}`).
//!
//! Supported field attributes:
//!
//! * `#[serde(default)]` — a missing key deserializes via `Default`;
//! * `#[serde(default = "path")]` — a missing key deserializes via the
//!   named function (resolved in the defining module, like real serde);
//! * `#[serde(skip_serializing_if = "path")]` — the field is omitted from
//!   the serialized object when `path(&value)` is true.
//!
//! The macro parses the item token stream by hand (no `syn`), which is
//! adequate because the supported grammar is small; unsupported shapes
//! produce a compile error naming the construct.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a missing key fills in during deserialization.
#[derive(Clone)]
enum FieldDefault {
    /// `#[serde(default)]`: `Default::default()`.
    Trait,
    /// `#[serde(default = "path")]`: call the named function.
    Path(String),
}

impl FieldDefault {
    /// The expression the generated impl evaluates for a missing key.
    fn expr(&self) -> String {
        match self {
            FieldDefault::Trait => "Default::default()".to_string(),
            FieldDefault::Path(p) => format!("{p}()"),
        }
    }
}

/// One parsed field of a struct or struct variant.
struct Field {
    name: String,
    /// `#[serde(default)]` / `#[serde(default = "path")]` payload.
    default: Option<FieldDefault>,
    /// `#[serde(skip_serializing_if = "path")]` payload.
    skip_if: Option<String>,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    /// `None` for unit variants, `Some(fields)` for struct variants.
    fields: Option<Vec<Field>>,
}

/// Parsed derive input.
enum Input {
    NamedStruct { name: String, fields: Vec<Field> },
    NewtypeStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

/// Extracts serde attributes from an attribute group token sequence.
/// `tokens` is the content inside `#[...]`.
fn parse_serde_attr(tokens: &[TokenTree], default: &mut Option<FieldDefault>, skip_if: &mut Option<String>) {
    // Expect: serde ( ... )
    let mut it = tokens.iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(g)) = it.next() else {
        return;
    };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    while i < inner.len() {
        match &inner[i] {
            TokenTree::Ident(id) if id.to_string() == "default" => {
                // Either bare `default` or `default = "path"`.
                let is_path = matches!(
                    (inner.get(i + 1), inner.get(i + 2)),
                    (Some(TokenTree::Punct(p)), Some(TokenTree::Literal(_))) if p.as_char() == '='
                );
                if is_path {
                    if let Some(TokenTree::Literal(lit)) = inner.get(i + 2) {
                        let s = lit.to_string();
                        *default = Some(FieldDefault::Path(s.trim_matches('"').to_string()));
                    }
                    i += 3;
                } else {
                    *default = Some(FieldDefault::Trait);
                    i += 1;
                }
            }
            TokenTree::Ident(id) if id.to_string() == "skip_serializing_if" => {
                // skip_serializing_if = "path"
                i += 2; // skip ident and '='
                if let Some(TokenTree::Literal(lit)) = inner.get(i) {
                    let s = lit.to_string();
                    *skip_if = Some(s.trim_matches('"').to_string());
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// Consumes attribute groups (`#[...]`) at `*i`, collecting serde field
/// attributes.
fn skip_attrs(
    tokens: &[TokenTree],
    i: &mut usize,
    default: &mut Option<FieldDefault>,
    skip_if: &mut Option<String>,
) {
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    parse_serde_attr(&inner, default, skip_if);
                }
                *i += 2;
            }
            _ => break,
        }
    }
}

/// Parses the fields of a named-field body group: `{ pub a: T, ... }`.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut default = None;
        let mut skip_if = None;
        skip_attrs(&tokens, &mut i, &mut default, &mut skip_if);
        // Optional visibility: `pub` possibly followed by `(...)`.
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        // Field name.
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        // Skip `:` then the type, up to the next top-level comma. Angle
        // brackets need depth tracking (`Vec<(u64, u64)>`); parens/brackets
        // arrive as single groups.
        i += 1; // ':'
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name,
            default,
            skip_if,
        });
    }
    fields
}

/// Parses the variants of an enum body group.
fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut default = None;
        let mut skip_if = None;
        skip_attrs(&tokens, &mut i, &mut default, &mut skip_if);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let mut fields = None;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            if g.delimiter() == Delimiter::Brace {
                fields = Some(parse_named_fields(g));
                i += 1;
            } else if g.delimiter() == Delimiter::Parenthesis {
                panic!("vendored serde_derive: tuple enum variants are not supported ({name})");
            }
        }
        // Skip an optional trailing comma.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

/// Parses the derive input item.
fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("vendored serde_derive: unexpected input start {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("vendored serde_derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("vendored serde_derive: generic types are not supported ({name})");
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input::NamedStruct {
                name,
                fields: parse_named_fields(g),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                // Count top-level commas to reject multi-field tuples.
                let commas = inner
                    .iter()
                    .filter(|t| matches!(t, TokenTree::Punct(p) if p.as_char() == ','))
                    .count();
                let trailing_comma = matches!(
                    inner.last(),
                    Some(TokenTree::Punct(p)) if p.as_char() == ','
                );
                if commas > usize::from(trailing_comma) {
                    panic!(
                        "vendored serde_derive: multi-field tuple structs are not supported ({name})"
                    );
                }
                Input::NewtypeStruct { name }
            }
            other => panic!("vendored serde_derive: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input::Enum {
                name,
                variants: parse_variants(g),
            },
            other => panic!("vendored serde_derive: unsupported enum body {other:?}"),
        },
        other => panic!("vendored serde_derive: unsupported item kind `{other}`"),
    }
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_input(input) {
        Input::NamedStruct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n  fn to_value(&self) -> ::serde::Value {{\n    let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n"
            ));
            for f in &fields {
                let fname = &f.name;
                if let Some(skip) = &f.skip_if {
                    out.push_str(&format!(
                        "    if !{skip}(&self.{fname}) {{ entries.push((\"{fname}\".to_string(), ::serde::Serialize::to_value(&self.{fname}))); }}\n"
                    ));
                } else {
                    out.push_str(&format!(
                        "    entries.push((\"{fname}\".to_string(), ::serde::Serialize::to_value(&self.{fname})));\n"
                    ));
                }
            }
            out.push_str("    ::serde::Value::Object(entries)\n  }\n}\n");
        }
        Input::NewtypeStruct { name } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n  fn to_value(&self) -> ::serde::Value {{\n    ::serde::Serialize::to_value(&self.0)\n  }}\n}}\n"
            ));
        }
        Input::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n  fn to_value(&self) -> ::serde::Value {{\n    match self {{\n"
            ));
            for v in &variants {
                let vname = &v.name;
                match &v.fields {
                    None => out.push_str(&format!(
                        "      {name}::{vname} => ::serde::Value::String(\"{vname}\".to_string()),\n"
                    )),
                    Some(fields) => {
                        let pat: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        out.push_str(&format!(
                            "      {name}::{vname} {{ {} }} => {{\n        let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n",
                            pat.join(", ")
                        ));
                        for f in fields {
                            let fname = &f.name;
                            out.push_str(&format!(
                                "        entries.push((\"{fname}\".to_string(), ::serde::Serialize::to_value({fname})));\n"
                            ));
                        }
                        out.push_str(&format!(
                            "        ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Object(entries))])\n      }}\n"
                        ));
                    }
                }
            }
            out.push_str("    }\n  }\n}\n");
        }
    }
    out.parse().expect("vendored serde_derive: generated invalid Serialize impl")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_input(input) {
        Input::NamedStruct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n  fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n    if !matches!(v, ::serde::Value::Object(_)) {{\n      return Err(::serde::Error::msg(format!(\"{name}: expected object, found {{}}\", v.kind())));\n    }}\n    Ok({name} {{\n"
            ));
            for f in &fields {
                let fname = &f.name;
                if let Some(d) = &f.default {
                    let dexpr = d.expr();
                    out.push_str(&format!(
                        "      {fname}: match v.get(\"{fname}\") {{ Some(fv) => ::serde::Deserialize::from_value(fv)?, None => {dexpr} }},\n"
                    ));
                } else {
                    out.push_str(&format!(
                        "      {fname}: ::serde::Deserialize::from_value(v.get(\"{fname}\").ok_or_else(|| ::serde::Error::msg(\"{name}: missing field `{fname}`\"))?)?,\n"
                    ));
                }
            }
            out.push_str("    })\n  }\n}\n");
        }
        Input::NewtypeStruct { name } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n  fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n    Ok({name}(::serde::Deserialize::from_value(v)?))\n  }}\n}}\n"
            ));
        }
        Input::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n  fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n    match v {{\n      ::serde::Value::String(s) => match s.as_str() {{\n"
            ));
            for v in variants.iter().filter(|v| v.fields.is_none()) {
                let vname = &v.name;
                out.push_str(&format!("        \"{vname}\" => Ok({name}::{vname}),\n"));
            }
            out.push_str(&format!(
                "        other => Err(::serde::Error::msg(format!(\"{name}: unknown variant `{{other}}`\"))),\n      }},\n      ::serde::Value::Object(entries) if entries.len() == 1 => {{\n        let (tag, body) = &entries[0];\n        match tag.as_str() {{\n"
            ));
            for v in variants.iter() {
                if let Some(fields) = &v.fields {
                    let vname = &v.name;
                    out.push_str(&format!("          \"{vname}\" => Ok({name}::{vname} {{\n"));
                    for f in fields {
                        let fname = &f.name;
                        if let Some(d) = &f.default {
                            let dexpr = d.expr();
                            out.push_str(&format!(
                                "            {fname}: match body.get(\"{fname}\") {{ Some(fv) => ::serde::Deserialize::from_value(fv)?, None => {dexpr} }},\n"
                            ));
                        } else {
                            out.push_str(&format!(
                                "            {fname}: ::serde::Deserialize::from_value(body.get(\"{fname}\").ok_or_else(|| ::serde::Error::msg(\"{name}::{vname}: missing field `{fname}`\"))?)?,\n"
                            ));
                        }
                    }
                    out.push_str("          }),\n");
                }
            }
            out.push_str(&format!(
                "          other => Err(::serde::Error::msg(format!(\"{name}: unknown variant `{{other}}`\"))),\n        }}\n      }}\n      other => Err(::serde::Error::msg(format!(\"{name}: expected string or single-key object, found {{}}\", other.kind()))),\n    }}\n  }}\n}}\n"
            ));
        }
    }
    out.parse().expect("vendored serde_derive: generated invalid Deserialize impl")
}
