//! The JSON data model shared by the vendored `serde` and `serde_json`.

use std::fmt;

/// A parsed or to-be-serialized JSON value.
///
/// Objects preserve insertion order (like serde_json's `preserve_order`
/// feature) so serialized output is deterministic and mirrors struct field
/// order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any integer (JSON numbers without a fraction/exponent).
    Int(i128),
    /// Any non-integer number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}
