//! Vendored, offline-compatible subset of the `serde` API.
//!
//! This workspace builds in hermetic environments with no access to
//! crates.io, so the handful of external dependencies are vendored as
//! minimal re-implementations of exactly the API surface the workspace
//! uses (see `vendor/README.md`). This crate provides:
//!
//! * [`Serialize`] / [`Deserialize`] traits built around a simple JSON
//!   [`value::Value`] data model (rather than serde's visitor machinery);
//! * blanket implementations for the primitives, arrays, tuples, `Vec`,
//!   slices, `Option` and `String`;
//! * re-exported derive macros (feature `derive`) that understand plain
//!   structs, newtype structs, unit enums and struct-variant enums, plus
//!   the `#[serde(default)]` and `#[serde(skip_serializing_if = "path")]`
//!   field attributes.
//!
//! The JSON conventions match serde_json's defaults (externally tagged
//! enums, newtype transparency), so documents produced by real serde for
//! the types in this workspace parse identically.

pub mod value;

pub use value::{Error, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Types that can convert themselves into the JSON [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from the JSON [`Value`] data model.
pub trait Deserialize: Sized {
    /// Attempts to build `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] describing the first mismatch encountered.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_int {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::msg(format!("integer {i} out of range"))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error::msg(format!(
                        "expected integer, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::Int(*self as i128)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error::msg(format!("expected number, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            Value::Array(items) => Err(Error::msg(format!(
                "expected array of length {N}, found length {}",
                items.len()
            ))),
            other => Err(Error::msg(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::msg(format!("expected pair, found {}", other.kind()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let arr = [1u64, 2, 3];
        assert_eq!(<[u64; 3]>::from_value(&arr.to_value()).unwrap(), arr);
        let opt: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&opt.to_value()).unwrap(), None);
    }

    #[test]
    fn out_of_range_int_rejected() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u64::from_value(&Value::String("x".into())).is_err());
    }
}
