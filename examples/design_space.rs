//! Domain scenario: an architect exploring the CacheCraft design space.
//!
//! Sweeps the fragment-store budget (the L2 tax) and the coalescing-buffer
//! depth for a mixed workload pair, printing the trade-off an architect
//! would use to size the mechanism.
//!
//! Run with:
//! ```text
//! cargo run --release --example design_space
//! ```

use cachecraft::harness::geomean;
use cachecraft::schemes::cachecraft::CacheCraftConfig;
use cachecraft::schemes::factory::{run_scheme, SchemeKind};
use cachecraft::schemes::storage::storage_bill;
use cachecraft::sim::config::GpuConfig;
use cachecraft::workloads::{SizeClass, Workload};

fn main() {
    let cfg = GpuConfig::gddr6();
    // A bandwidth-bound stream and a cache-sensitive irregular kernel:
    // the tension the tax must balance.
    let traces = [
        Workload::Triad.generate(SizeClass::Small, 3),
        Workload::MonteCarlo.generate(SizeClass::Small, 3),
    ];
    let baselines: Vec<f64> = traces
        .iter()
        .map(|t| run_scheme(&cfg, SchemeKind::NoProtection, t).exec_cycles as f64)
        .collect();

    println!("fragment budget sweep (coalescing buffer fixed at 32 entries):\n");
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>10}",
        "budget/slice", "L2 left", "triad perf", "mc perf", "geomean"
    );
    for kib in [0u64, 16, 32, 64, 128] {
        let cc = CacheCraftConfig {
            fragment_store: kib > 0,
            fragment_bytes_per_slice: kib << 10,
            ..CacheCraftConfig::full()
        };
        let kind = SchemeKind::CacheCraft(cc);
        let norms: Vec<f64> = traces
            .iter()
            .zip(&baselines)
            .map(|(t, &b)| b / run_scheme(&cfg, kind, t).exec_cycles as f64)
            .collect();
        println!(
            "{:<14} {:>10} {:>11.3}x {:>11.3}x {:>9.3}x",
            format!("{kib} KiB"),
            format!("{} KiB", (cfg.l2.capacity_bytes >> 10) - kib),
            norms[0],
            norms[1],
            geomean(&norms)
        );
    }

    println!("\ncoalescing-buffer depth sweep (fragments fixed at 64 KiB):\n");
    println!(
        "{:<10} {:>14} {:>12} {:>12}",
        "entries", "buffer silicon", "triad perf", "mc perf"
    );
    for entries in [4usize, 16, 32, 64] {
        let cc = CacheCraftConfig {
            coalesce_entries: entries,
            ..CacheCraftConfig::full()
        };
        let kind = SchemeKind::CacheCraft(cc);
        let bill = storage_bill(kind, &cfg);
        let norms: Vec<f64> = traces
            .iter()
            .zip(&baselines)
            .map(|(t, &b)| b / run_scheme(&cfg, kind, t).exec_cycles as f64)
            .collect();
        println!(
            "{:<10} {:>14} {:>11.3}x {:>11.3}x",
            entries,
            format!("{:.1} KiB", bill.buffer_bytes as f64 / 1024.0),
            norms[0],
            norms[1],
        );
    }
    println!("\nThe default (64 KiB fragments, 32-entry buffer) sits at the knee.");
}
