//! Quickstart: measure what inline-ECC protection costs a streaming GPU
//! kernel, and how much of that cost CacheCraft recovers.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use cachecraft::schemes::cachecraft::CacheCraftConfig;
use cachecraft::schemes::factory::{run_scheme, SchemeKind};
use cachecraft::sim::config::GpuConfig;
use cachecraft::workloads::{SizeClass, Workload};

fn main() {
    // 1. Pick a machine. `gddr6()` is the evaluation preset: 16 SMs,
    //    4 MiB L2, 8 GDDR6-class channels with inline ECC.
    let cfg = GpuConfig::gddr6();

    // 2. Pick a workload. `Triad` is the classic bandwidth-bound stream:
    //    A[i] = B[i] + s * C[i].
    let trace = Workload::Triad.generate(SizeClass::Small, 42);
    println!("workload: {trace}\n");

    // 3. Run it under each protection scheme.
    let schemes = [
        ("ECC off            ", SchemeKind::NoProtection),
        (
            "naive inline ECC   ",
            SchemeKind::InlineNaive { coverage: 8 },
        ),
        (
            "dedicated ECC cache",
            SchemeKind::EccCache {
                coverage: 8,
                capacity_per_mc: 16 << 10,
            },
        ),
        (
            "CacheCraft         ",
            SchemeKind::CacheCraft(CacheCraftConfig::for_machine(&cfg)),
        ),
    ];
    let baseline = run_scheme(&cfg, schemes[0].1, &trace);
    println!(
        "{:<20} {:>12} {:>10} {:>10} {:>10}",
        "scheme", "exec cycles", "perf", "ECC share", "row hits"
    );
    for (label, kind) in schemes {
        let stats = run_scheme(&cfg, kind, &trace);
        println!(
            "{:<20} {:>12} {:>9.3}x {:>9.1}% {:>9.1}%",
            label,
            stats.exec_cycles,
            baseline.exec_cycles as f64 / stats.exec_cycles as f64,
            100.0 * stats.ecc_traffic_fraction(),
            100.0 * stats.row_hit_rate(),
        );
    }
    println!(
        "\nNaive inline ECC pays a second DRAM transaction for most accesses;\n\
         CacheCraft keeps the check bits on chip (fragment store), co-locates\n\
         the rest with their data rows, and reconstructs write-back ECC on chip."
    );
}
