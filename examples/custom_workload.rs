//! Domain scenario: bringing your own kernel to the simulator.
//!
//! Models a "gather-scatter particle update" kernel that is not in the
//! built-in suite, using the public trace API: per-thread addresses are
//! coalesced exactly like a GPU would, and the resulting trace runs under
//! any protection scheme.
//!
//! Run with:
//! ```text
//! cargo run --release --example custom_workload
//! ```

use cachecraft::schemes::cachecraft::CacheCraftConfig;
use cachecraft::schemes::factory::{run_scheme, SchemeKind};
use cachecraft::sim::coalesce::{coalesce, coalesce_writes};
use cachecraft::sim::config::GpuConfig;
use cachecraft::sim::trace::{KernelTrace, WarpOp, WarpTrace};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Particles: position array (streamed), cell index (random gather into a
/// grid), then a scattered partial write of updated positions.
fn particle_kernel(warps: u64, particles: u64, grid_cells: u64, seed: u64) -> KernelTrace {
    let pos_base = 0u64; // f32x2 per particle
    let grid_base = particles * 8; // one f32 per cell
    let traces = (0..warps)
        .map(|w| {
            let mut rng = SmallRng::seed_from_u64(seed ^ (0xAAC0 + w));
            let mut ops = Vec::new();
            let mut p = w * 32;
            while p < particles {
                // Stream this warp's 32 particle positions (8 B each).
                let addrs: Vec<u64> = (0..32)
                    .filter(|t| p + t < particles)
                    .map(|t| pos_base + (p + t) * 8)
                    .collect();
                ops.push(WarpOp::Load {
                    atoms: coalesce(&addrs),
                });
                // Gather each particle's grid cell (random).
                let cells: Vec<u64> = addrs
                    .iter()
                    .map(|_| grid_base + rng.gen_range(0..grid_cells) * 4)
                    .collect();
                ops.push(WarpOp::Load {
                    atoms: coalesce(&cells),
                });
                ops.push(WarpOp::Compute { cycles: 12 });
                // Scatter updated positions back (full 8 B per particle —
                // classify atom coverage automatically).
                for (atom, full) in coalesce_writes(&addrs, 8) {
                    ops.push(WarpOp::Store {
                        atoms: vec![atom],
                        full,
                    });
                }
                p += warps * 32;
            }
            WarpTrace::new(ops)
        })
        .collect();
    KernelTrace::new("particles", traces)
}

fn main() {
    let cfg = GpuConfig::gddr6();
    let trace = particle_kernel(128, 262_144, 1 << 20, 7);
    println!("custom kernel: {trace}\n");

    let schemes = [
        ("ECC off    ", SchemeKind::NoProtection),
        ("naive      ", SchemeKind::InlineNaive { coverage: 8 }),
        (
            "CacheCraft ",
            SchemeKind::CacheCraft(CacheCraftConfig::for_machine(&cfg)),
        ),
    ];
    let base = run_scheme(&cfg, schemes[0].1, &trace);
    for (label, kind) in schemes {
        let s = run_scheme(&cfg, kind, &trace);
        println!(
            "{label} exec {:>9} cycles  perf {:>5.3}x  DRAM {:>6.1} B/cyc  ECC share {:>4.1}%",
            s.exec_cycles,
            base.exec_cycles as f64 / s.exec_cycles as f64,
            s.dram_bw_bytes_per_cycle(),
            100.0 * s.ecc_traffic_fraction(),
        );
    }
}
