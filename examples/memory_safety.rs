//! Domain scenario: catching GPU memory-safety violations with implicit
//! memory tagging — at zero storage and zero bandwidth overhead.
//!
//! A CUDA-style allocator hands out buffers whose memory tag rides inside
//! the SEC-DED check bits (IMT, Sullivan et al. ISCA'23). A stale pointer
//! or out-of-bounds access presents the wrong tag and is caught by the
//! decoder even though no metadata was stored anywhere.
//!
//! Run with:
//! ```text
//! cargo run --release --example memory_safety
//! ```

use cachecraft::ecc::code::DecodeOutcome;
use cachecraft::ecc::tagged::TaggedSecDed;
use std::collections::HashMap;

/// A toy tagged heap: every 8-byte granule is protected by tagged
/// SEC-DED(72,64); the allocator assigns each allocation a 4-bit tag and
/// colours pointers with it (here: we carry the tag alongside the address).
struct TaggedHeap {
    codec: TaggedSecDed,
    granules: HashMap<u64, ([u8; 8], Vec<u8>)>,
    next_tag: u8,
}

#[derive(Debug, Clone, Copy)]
struct ColouredPtr {
    addr: u64,
    tag: u8,
    len: u64,
}

impl TaggedHeap {
    fn new() -> Self {
        TaggedHeap {
            codec: TaggedSecDed::new(4).expect("4-bit tags"),
            granules: HashMap::new(),
            next_tag: 1,
        }
    }

    /// Allocates `len` granules at `addr` under a fresh tag.
    fn alloc(&mut self, addr: u64, len: u64) -> ColouredPtr {
        let tag = self.next_tag;
        self.next_tag = (self.next_tag + 1) % 16;
        for g in 0..len {
            let data = [0u8; 8];
            let check = self.codec.encode(&data, tag);
            self.granules.insert(addr + g, (data, check));
        }
        ColouredPtr { addr, tag, len }
    }

    /// Frees and re-tags the memory (models reallocation to someone else).
    fn free_and_reuse(&mut self, ptr: ColouredPtr) -> ColouredPtr {
        self.alloc(ptr.addr, ptr.len)
    }

    fn store(&mut self, ptr: ColouredPtr, offset: u64, value: u64) -> DecodeOutcome {
        let Some((data, check)) = self.granules.get_mut(&(ptr.addr + offset)) else {
            return DecodeOutcome::DetectedUncorrectable;
        };
        // A store verifies the tag first (load-check-store).
        let mut probe = *data;
        let outcome = self.codec.decode(&mut probe, check, ptr.tag);
        if outcome.is_usable() {
            *data = value.to_le_bytes();
            *check = self.codec.encode(data, ptr.tag);
        }
        outcome
    }

    fn load(&self, ptr: ColouredPtr, offset: u64) -> (Option<u64>, DecodeOutcome) {
        let Some((data, check)) = self.granules.get(&(ptr.addr + offset)) else {
            return (None, DecodeOutcome::DetectedUncorrectable);
        };
        let mut buf = *data;
        let outcome = self.codec.decode(&mut buf, check, ptr.tag);
        if outcome.is_usable() {
            (Some(u64::from_le_bytes(buf)), outcome)
        } else {
            (None, outcome)
        }
    }
}

fn main() {
    let mut heap = TaggedHeap::new();

    // A kernel allocates two neighbouring buffers.
    let a = heap.alloc(0x1000, 8);
    let b = heap.alloc(0x1008, 8);
    println!("alloc A @ {:#x} tag {}", a.addr, a.tag);
    println!("alloc B @ {:#x} tag {}", b.addr, b.tag);

    // Legitimate accesses work and correct single-bit upsets transparently.
    assert!(heap.store(a, 3, 0xDEAD_BEEF).is_usable());
    let (v, outcome) = heap.load(a, 3);
    println!("\nA[3] = {:#x} ({outcome})", v.unwrap());

    // Bug 1: buffer overflow from A into B. The granule exists, but it
    // carries B's tag — the ECC decoder reports the violation.
    let oob = ColouredPtr {
        addr: a.addr,
        tag: a.tag,
        len: a.len + 1,
    };
    let outcome = heap.load(oob, 8).1; // A[8] is really B[0]
    println!("overflow A[8]    -> {outcome}");
    assert_eq!(outcome, DecodeOutcome::TagMismatch);

    // Bug 2: use-after-free. B is freed and reallocated under a new tag;
    // the stale pointer's tag no longer matches.
    let b_new = heap.free_and_reuse(b);
    let outcome = heap.load(b, 0).1;
    println!("use-after-free B -> {outcome}");
    assert_eq!(outcome, DecodeOutcome::TagMismatch);
    let (_, ok) = heap.load(b_new, 0);
    assert!(ok.is_usable());

    println!(
        "\nBoth violations caught with 0 bytes of tag storage and 0 extra\n\
         DRAM traffic: the tag lives inside check bits that inline ECC —\n\
         and therefore CacheCraft — already moves."
    );
}
